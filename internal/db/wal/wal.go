// Package wal implements the write-ahead log of the database kernel's
// durability subsystem: an append-only sequence of length-prefixed,
// CRC-checked records spread over numbered segment files. The engine
// appends a record for every Insert and every DDL statement before
// mutating any state, and the disk-backed storage manager spills
// evicted dirty pages as full page images; recovery replays the log in
// order on top of the last checkpoint's page files, reconstructing the
// exact committed prefix.
//
// Failure model: segments are append-only, so a crash can leave at
// most one partial record — a prefix of the final append — at the tail
// of the newest segment. The scanner distinguishes that torn tail
// (recoverable: the committed prefix ends just before it) from a
// full-length record whose CRC does not match (real corruption, which
// aborts recovery rather than silently dropping committed data). One
// case is undecidable by construction: a corrupted length field whose
// claimed extent runs past end-of-file reads exactly like a genuine
// torn append, so it is treated as one — an append-only log without
// external commit markers cannot tell them apart, and Sync plus
// checkpointing bound the exposure to the newest segment's tail.
//
// The package is deliberately self-contained: records carry table
// names, opaque storage-encoded tuples and raw page images, so it
// imports nothing from the rest of the kernel and the decoder can be
// fuzzed in isolation (FuzzDecodeRecord).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Record type tags (the first payload byte).
const (
	// TypeInsert is one row appended to a table: the table name and
	// the storage-encoded tuple.
	TypeInsert uint8 = 1
	// TypeCreateTable is a CREATE TABLE: name plus ordered columns.
	TypeCreateTable uint8 = 2
	// TypeCreateIndex is a CREATE INDEX: table, column, kind, unique.
	TypeCreateIndex uint8 = 3
	// TypePageWrite is a full page image written to the storage
	// manager between checkpoints (an evicted dirty page or an
	// explicit flush).
	TypePageWrite uint8 = 4
)

// MaxRecordBytes bounds one record's payload: a page image plus
// framing fits comfortably, and anything larger in a length prefix
// marks garbage, not data.
const MaxRecordBytes = 1 << 20

// Record is one log record. The concrete types are Insert,
// CreateTable, CreateIndex and PageWrite.
type Record interface {
	recType() uint8
}

// Insert logs one row append: Tuple is the storage-encoded row (the
// same bytes the heap stores), kept opaque here so the log does not
// depend on the kernel's value codec.
type Insert struct {
	Table string
	Tuple []byte
}

func (Insert) recType() uint8 { return TypeInsert }

// Column is one column of a logged CREATE TABLE (Type is the kernel's
// value.Type, carried as a raw byte).
type Column struct {
	Name string
	Type uint8
}

// CreateTable logs a table creation.
type CreateTable struct {
	Name string
	Cols []Column
}

func (CreateTable) recType() uint8 { return TypeCreateTable }

// CreateIndex logs an index creation (Kind is the kernel's
// catalog.IndexKind as a raw byte).
type CreateIndex struct {
	Table  string
	Column string
	Kind   uint8
	Unique bool
}

func (CreateIndex) recType() uint8 { return TypeCreateIndex }

// PageWrite logs one full page image written to storage file File at
// page number Page.
type PageWrite struct {
	File uint32
	Page uint32
	Data []byte
}

func (PageWrite) recType() uint8 { return TypePageWrite }

// ErrCorrupt reports a record that is fully present in a segment but
// does not decode: a CRC mismatch, an impossible length, or a malformed
// payload followed by more log data. Unlike a torn tail, this is not a
// crash artifact and recovery must not silently skip it.
var ErrCorrupt = errors.New("wal: corrupt record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ---- record payload codec ----

func appendStr(dst []byte, s string) ([]byte, error) {
	if len(s) > 0xFFFF {
		return nil, fmt.Errorf("wal: string field too long (%d bytes)", len(s))
	}
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(s)))
	dst = append(dst, tmp[:]...)
	return append(dst, s...), nil
}

func appendBytes(dst []byte, b []byte) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b)))
	dst = append(dst, tmp[:]...)
	return append(dst, b...)
}

func appendU32(dst []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(dst, tmp[:]...)
}

// EncodeRecord serializes a record payload (type byte + body).
func EncodeRecord(rec Record) ([]byte, error) {
	var p []byte
	var err error
	switch r := rec.(type) {
	case Insert:
		p = append(p, TypeInsert)
		if p, err = appendStr(p, r.Table); err != nil {
			return nil, err
		}
		p = appendBytes(p, r.Tuple)
	case CreateTable:
		p = append(p, TypeCreateTable)
		if p, err = appendStr(p, r.Name); err != nil {
			return nil, err
		}
		if len(r.Cols) > 0xFFFF {
			return nil, fmt.Errorf("wal: too many columns (%d)", len(r.Cols))
		}
		var tmp [2]byte
		binary.LittleEndian.PutUint16(tmp[:], uint16(len(r.Cols)))
		p = append(p, tmp[:]...)
		for _, c := range r.Cols {
			if p, err = appendStr(p, c.Name); err != nil {
				return nil, err
			}
			p = append(p, c.Type)
		}
	case CreateIndex:
		p = append(p, TypeCreateIndex)
		if p, err = appendStr(p, r.Table); err != nil {
			return nil, err
		}
		if p, err = appendStr(p, r.Column); err != nil {
			return nil, err
		}
		u := byte(0)
		if r.Unique {
			u = 1
		}
		p = append(p, r.Kind, u)
	case PageWrite:
		p = append(p, TypePageWrite)
		p = appendU32(p, r.File)
		p = appendU32(p, r.Page)
		p = appendBytes(p, r.Data)
	default:
		return nil, fmt.Errorf("wal: unknown record type %T", rec)
	}
	if len(p) > MaxRecordBytes {
		return nil, fmt.Errorf("wal: record too large (%d bytes)", len(p))
	}
	return p, nil
}

// decoder walks a payload without ever indexing past its end, so
// DecodeRecord is panic-free on arbitrary input.
type decoder struct {
	p   []byte
	off int
	err error
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.p) {
		d.fail()
		return 0
	}
	v := d.p[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.p) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.p[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.p) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.p[d.off:])
	d.off += 4
	return v
}

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.p) {
		d.fail()
		return ""
	}
	s := string(d.p[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n > MaxRecordBytes || d.off+n > len(d.p) {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, d.p[d.off:d.off+n])
	d.off += n
	return b
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
}

// DecodeRecord parses one record payload. It never panics, rejects
// trailing garbage, and wraps every failure in ErrCorrupt.
func DecodeRecord(p []byte) (Record, error) {
	d := &decoder{p: p}
	var rec Record
	switch t := d.u8(); t {
	case TypeInsert:
		rec = Insert{Table: d.str(), Tuple: d.bytes()}
	case TypeCreateTable:
		r := CreateTable{Name: d.str()}
		n := int(d.u16())
		for i := 0; i < n && d.err == nil; i++ {
			r.Cols = append(r.Cols, Column{Name: d.str(), Type: d.u8()})
		}
		rec = r
	case TypeCreateIndex:
		r := CreateIndex{Table: d.str(), Column: d.str(), Kind: d.u8()}
		switch u := d.u8(); u {
		case 0, 1:
			r.Unique = u == 1
		default:
			if d.err == nil {
				d.err = fmt.Errorf("%w: bad unique flag %d", ErrCorrupt, u)
			}
		}
		rec = r
	case TypePageWrite:
		rec = PageWrite{File: d.u32(), Page: d.u32(), Data: d.bytes()}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("%w: unknown record type %d", ErrCorrupt, t)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(p) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p)-d.off)
	}
	return rec, nil
}

// ---- segments ----

const segPrefix = "wal-"
const segSuffix = ".log"

// SegmentName returns the file name of segment seq.
func SegmentName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

// Segment names one on-disk log segment.
type Segment struct {
	Seq  uint64
	Path string
}

// Segments lists the segment files under dir in ascending sequence
// order. A missing directory yields an empty list.
func Segments(dir string) ([]Segment, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []Segment
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name[len(segPrefix):len(name)-len(segSuffix)], "%d", &seq); err != nil {
			continue
		}
		segs = append(segs, Segment{Seq: seq, Path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// frame header: payload length (u32) + CRC-32C of the payload (u32).
const frameHdr = 8

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// ScanSegment walks one segment, calling fn for every valid record
// with the file offset just past it. It returns the offset of the end
// of the last valid record (the committed prefix within this segment)
// and whether the bytes beyond it are a torn tail. A full-length
// record that fails its CRC or does not decode returns ErrCorrupt; a
// partial record at EOF sets torn instead. fn errors abort the scan.
func ScanSegment(path string, fn func(rec Record, end int64) error) (end int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	off := 0
	for off < len(data) {
		rem := len(data) - off
		if rem < frameHdr {
			return int64(off), true, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > MaxRecordBytes {
			// A run of zeros to EOF is the classic power-loss artifact
			// (a filesystem extended the file before the append's bytes
			// reached it): torn tail, committed prefix ends here.
			if n == 0 && allZero(data[off:]) {
				return int64(off), true, nil
			}
			// An impossible length whose claimed extent still fits the
			// file is corruption; one that runs past EOF is the torn
			// prefix of a record whose length field never fully landed.
			if n > 0 && off+frameHdr+n > len(data) {
				return int64(off), true, nil
			}
			return int64(off), false, fmt.Errorf("%w: bad record length %d at offset %d of %s", ErrCorrupt, n, off, path)
		}
		if off+frameHdr+n > len(data) {
			return int64(off), true, nil
		}
		payload := data[off+frameHdr : off+frameHdr+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return int64(off), false, fmt.Errorf("%w: CRC mismatch at offset %d of %s", ErrCorrupt, off, path)
		}
		rec, derr := DecodeRecord(payload)
		if derr != nil {
			return int64(off), false, fmt.Errorf("%s offset %d: %w", path, off, derr)
		}
		off += frameHdr + n
		if fn != nil {
			if err := fn(rec, int64(off)); err != nil {
				return int64(off), false, err
			}
		}
	}
	return int64(off), false, nil
}

// Tail describes where the committed log ends: the newest segment's
// sequence number and the offset just past its last valid record. A
// writer opened at this position truncates any torn tail and continues
// the log seamlessly.
type Tail struct {
	Seq uint64
	End int64
}

// Replay scans every segment with sequence >= fromSeq in order,
// calling fn for each record, and returns the tail position. A torn
// tail is tolerated only on the newest segment (the only place a crash
// can leave one); anywhere else it reports ErrCorrupt. When no
// segments exist the tail is (fromSeq, 0).
func Replay(dir string, fromSeq uint64, fn func(rec Record) error) (Tail, error) {
	segs, err := Segments(dir)
	if err != nil {
		return Tail{}, err
	}
	live := segs[:0]
	for _, s := range segs {
		if s.Seq >= fromSeq {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return Tail{Seq: fromSeq}, nil
	}
	tail := Tail{}
	for i, s := range live {
		end, torn, err := ScanSegment(s.Path, func(rec Record, _ int64) error { return fn(rec) })
		if err != nil {
			return Tail{}, err
		}
		if torn && i != len(live)-1 {
			return Tail{}, fmt.Errorf("%w: torn record inside non-final segment %s", ErrCorrupt, s.Path)
		}
		tail = Tail{Seq: s.Seq, End: end}
	}
	return tail, nil
}

// ---- writer ----

// Options configures a Writer.
type Options struct {
	// SegmentBytes is the rotation threshold (default 8 MB): an append
	// that would push the current segment past it rotates to a fresh
	// segment first.
	SegmentBytes int64
	// SyncEvery makes every Append fsync the segment before returning
	// (power-loss durability per record). Off by default: records are
	// written straight to the file — surviving any process crash — and
	// fsynced at checkpoints and rotation.
	SyncEvery bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// Writer appends records to the log. Safe for concurrent use.
type Writer struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	seq    uint64
	f      *os.File
	off    int64
	closed bool

	// broken is set when a failed append could not be rolled back:
	// the segment may carry a partial frame that later appends would
	// bury mid-segment, so the writer refuses all further work.
	broken error

	// appends/fsyncs count successful record appends and segment
	// fsyncs across the writer's lifetime — the durability counters
	// surfaced by SHOW wal and the Prometheus /metrics endpoint.
	// Atomic so Counters never takes mu (stats endpoints must not
	// queue behind an in-flight fsync).
	appends atomic.Uint64
	fsyncs  atomic.Uint64
}

// Counters is a point-in-time copy of the writer's lifetime counters.
type Counters struct {
	// Appends is the number of records successfully appended.
	Appends uint64
	// Fsyncs is the number of segment fsyncs (Sync calls, per-append
	// syncs under SyncEvery, and rotation/close syncs).
	Fsyncs uint64
}

// Counters returns the writer's lifetime append/fsync counters.
func (w *Writer) Counters() Counters {
	return Counters{Appends: w.appends.Load(), Fsyncs: w.fsyncs.Load()}
}

// OpenWriter positions a writer at tail: segment tail.Seq is opened
// (created if absent), truncated to tail.End — discarding any torn
// bytes recovery skipped — and appended to from there.
func OpenWriter(dir string, tail Tail, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(tail.Seq)), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(tail.End); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(tail.End, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{dir: dir, opts: opts.withDefaults(), seq: tail.Seq, f: f, off: tail.End}, nil
}

// Seq returns the sequence number of the segment currently appended
// to.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Append frames and writes one record. The record is on stable media
// only after Sync (or with Options.SyncEvery), but it survives a
// process crash as soon as Append returns.
func (w *Writer) Append(rec Record) error {
	payload, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	frame := make([]byte, frameHdr+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHdr:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: writer is closed")
	}
	if w.broken != nil {
		return w.broken
	}
	if w.off > 0 && w.off+int64(len(frame)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(w.seq + 1); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		// A partial frame may be on disk past w.off; roll the segment
		// back to the last record boundary so a later successful append
		// cannot bury garbage mid-segment. If even that fails, refuse
		// all further appends — a recovery-time scan would misread the
		// log otherwise.
		if terr := w.f.Truncate(w.off); terr != nil {
			w.broken = fmt.Errorf("wal: segment has a partial frame that could not be truncated: %v (after append error: %w)", terr, err)
		} else if _, serr := w.f.Seek(w.off, 0); serr != nil {
			w.broken = fmt.Errorf("wal: segment position lost after failed append: %v (append error: %w)", serr, err)
		}
		return err
	}
	w.off += int64(len(frame))
	w.appends.Add(1)
	if w.opts.SyncEvery {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.fsyncs.Add(1)
	}
	return nil
}

// Sync fsyncs the current segment.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	return nil
}

// rotateLocked syncs and closes the current segment and starts seq.
func (w *Writer) rotateLocked(seq uint64) error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	if err := w.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(w.dir, SegmentName(seq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.f, w.seq, w.off = f, seq, 0
	return syncDir(w.dir)
}

// NextSeq returns the sequence a ResetTo after a checkpoint should
// start at: one past the current segment, so the manifest can name it
// before any record lands there.
func (w *Writer) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq + 1
}

// ResetTo truncates the log after a checkpoint: every segment with
// sequence < seq is deleted and a fresh segment seq becomes current.
// Call only after the checkpoint manifest naming seq has been durably
// published — a crash between the two leaves stale segments behind,
// which the next Replay skips by sequence.
func (w *Writer) ResetTo(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: writer is closed")
	}
	if err := w.rotateLocked(seq); err != nil {
		return err
	}
	segs, err := Segments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.Seq < seq {
			if err := os.Remove(s.Path); err != nil {
				return err
			}
		}
	}
	// The segment that may have carried a partial frame is gone; a
	// broken writer is whole again on its fresh segment.
	w.broken = nil
	return syncDir(w.dir)
}

// Close syncs and closes the current segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	w.fsyncs.Add(1)
	return w.f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
