package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		CreateTable{Name: "t", Cols: []Column{{Name: "a", Type: 0}, {Name: "b", Type: 2}}},
		CreateIndex{Table: "t", Column: "a", Kind: 1, Unique: true},
		Insert{Table: "t", Tuple: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8}},
		Insert{Table: "t", Tuple: nil},
		PageWrite{File: 3, Page: 9, Data: bytes.Repeat([]byte{0xAB}, 8192)},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		p, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("encode %T: %v", rec, err)
		}
		got, err := DecodeRecord(p)
		if err != nil {
			t.Fatalf("decode %T: %v", rec, err)
		}
		// Nil and empty byte slices are equivalent on the wire.
		if ins, ok := rec.(Insert); ok && ins.Tuple == nil {
			ins.Tuple = []byte{}
			rec = ins
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("round trip %T: got %#v want %#v", rec, got, rec)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	p, _ := EncodeRecord(Insert{Table: "t", Tuple: []byte{1}})
	if _, err := DecodeRecord(append(p, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	p, _ := EncodeRecord(CreateTable{Name: "t", Cols: []Column{{Name: "abc", Type: 1}}})
	for i := 0; i < len(p); i++ {
		if _, err := DecodeRecord(p[:i]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d/%d decoded: %v", i, len(p), err)
		}
	}
}

// writeLog appends records through a fresh writer and returns the wal
// directory.
func writeLog(t *testing.T, recs []Record, opts Options) string {
	t.Helper()
	dir := t.TempDir()
	w, err := OpenWriter(dir, Tail{Seq: 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func replayAll(t *testing.T, dir string, from uint64) ([]Record, Tail) {
	t.Helper()
	var got []Record
	tail, err := Replay(dir, from, func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, tail
}

func TestWriterReplayRoundTrip(t *testing.T) {
	recs := sampleRecords()
	dir := writeLog(t, recs, Options{})
	got, tail := replayAll(t, dir, 1)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	if tail.Seq != 1 || tail.End == 0 {
		t.Fatalf("tail = %+v", tail)
	}
}

func TestSegmentRotation(t *testing.T) {
	// Tiny segments force rotation: the ~8KB page image cannot share a
	// 4KB segment with the small records before it.
	recs := sampleRecords()
	dir := writeLog(t, recs, Options{SegmentBytes: 4 << 10})
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", len(segs))
	}
	got, tail := replayAll(t, dir, 1)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(recs))
	}
	if tail.Seq != segs[len(segs)-1].Seq {
		t.Fatalf("tail seq %d, want newest segment %d", tail.Seq, segs[len(segs)-1].Seq)
	}
}

func TestReplayFromSeqSkipsStaleSegments(t *testing.T) {
	recs := sampleRecords()
	dir := writeLog(t, recs, Options{})
	// A "stale" pre-checkpoint segment that Replay must ignore.
	w, err := OpenWriter(dir, Tail{Seq: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Insert{Table: "stale", Tuple: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir, 1)
	for _, r := range got {
		if ins, ok := r.(Insert); ok && ins.Table == "stale" {
			t.Fatal("replay visited a segment below fromSeq")
		}
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
}

func TestTornTailRecoversCommittedPrefix(t *testing.T) {
	recs := sampleRecords()
	dir := writeLog(t, recs, Options{})
	segs, _ := Segments(dir)
	path := segs[0].Path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries within the segment.
	var ends []int64
	if _, _, err := ScanSegment(path, func(_ Record, end int64) error {
		ends = append(ends, end)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the final record.
	cut := ends[len(ends)-2] + (ends[len(ends)-1]-ends[len(ends)-2])/2
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	got, tail := replayAll(t, dir, 1)
	if len(got) != len(recs)-1 {
		t.Fatalf("torn tail: replayed %d records, want %d", len(got), len(recs)-1)
	}
	if tail.End != ends[len(ends)-2] {
		t.Fatalf("tail end %d, want %d", tail.End, ends[len(ends)-2])
	}
	// A writer opened at the tail truncates the torn bytes and appends
	// cleanly.
	w, err := OpenWriter(dir, tail, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Insert{Table: "t", Tuple: []byte{42}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = replayAll(t, dir, 1)
	if len(got) != len(recs) {
		t.Fatalf("after tail append: replayed %d records, want %d", len(got), len(recs))
	}
	if ins, ok := got[len(got)-1].(Insert); !ok || !bytes.Equal(ins.Tuple, []byte{42}) {
		t.Fatalf("last record = %#v, want the tail append", got[len(got)-1])
	}
}

func TestMidSegmentCRCCorruptionFailsReplay(t *testing.T) {
	recs := sampleRecords()
	dir := writeLog(t, recs, Options{})
	segs, _ := Segments(dir)
	path := segs[0].Path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the FIRST record's payload: full-length record
	// present, CRC mismatch, more log behind it.
	data[frameHdr+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 1, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-segment corruption: got %v, want ErrCorrupt", err)
	}
}

func TestTornRecordInsideNonFinalSegmentIsCorrupt(t *testing.T) {
	recs := sampleRecords()
	dir := writeLog(t, recs, Options{SegmentBytes: 4 << 10})
	segs, _ := Segments(dir)
	if len(segs) < 2 {
		t.Fatal("need rotation for this test")
	}
	first := segs[0].Path
	data, _ := os.ReadFile(first)
	if err := os.WriteFile(first, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Replay(dir, 1, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn non-final segment: got %v, want ErrCorrupt", err)
	}
}

func TestBadLengthDetection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName(1))
	// A frame header claiming an absurd length, with plenty of file
	// behind it: corruption, not a torn tail.
	frame := make([]byte, frameHdr+MaxRecordBytes+64)
	binary.LittleEndian.PutUint32(frame, uint32(MaxRecordBytes+32))
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ScanSegment(path, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize length with data behind: got %v, want ErrCorrupt", err)
	}
	// The same header at EOF with the claimed extent unfulfilled: torn.
	if err := os.WriteFile(path, frame[:frameHdr+10], 0o644); err != nil {
		t.Fatal(err)
	}
	end, torn, err := ScanSegment(path, nil)
	if err != nil || !torn || end != 0 {
		t.Fatalf("oversize length at EOF: end=%d torn=%v err=%v, want torn at 0", end, torn, err)
	}
}

func TestEmptyAndMissingDirs(t *testing.T) {
	if segs, err := Segments(filepath.Join(t.TempDir(), "nope")); err != nil || len(segs) != 0 {
		t.Fatalf("missing dir: %v %v", segs, err)
	}
	tail, err := Replay(t.TempDir(), 7, func(Record) error { return nil })
	if err != nil || tail.Seq != 7 || tail.End != 0 {
		t.Fatalf("empty dir tail = %+v err %v, want (7,0)", tail, err)
	}
}

func TestZeroFilledTailIsTorn(t *testing.T) {
	// A run of zeros at EOF — a filesystem that extended the file
	// before the append's bytes reached it — must read as a torn tail,
	// not corruption: the committed prefix ends where the zeros start.
	recs := sampleRecords()
	dir := writeLog(t, recs, Options{})
	segs, _ := Segments(dir)
	f, err := os.OpenFile(segs[0].Path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ScanSegment(segs[0].Path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, tail := replayAll(t, dir, 1)
	if len(got) != len(recs) {
		t.Fatalf("zero tail: replayed %d records, want %d", len(got), len(recs))
	}
	if tail.End != want {
		t.Fatalf("zero tail: end %d, want %d", tail.End, want)
	}
}
