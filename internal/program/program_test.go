package program

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildTestProgram constructs a small two-procedure program:
//
//	main:  entry(3) -> loop(2) -cond-> body… ; calls helper; returns
//	helper: entry(4) -> ret(1)
func buildTestProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder()
	m := b.Proc("main", "core")
	m.Fall("entry", 3)
	m.Cond("loop", 2, "exit")
	m.Call("callh", 1, "helper")
	m.Jump("back", 2, "loop")
	m.Ret("exit", 1)
	h := b.Proc("helper", "lib")
	h.Fall("entry", 4)
	h.Ret("ret", 1)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuildBasic(t *testing.T) {
	p := buildTestProgram(t)
	if got, want := p.NumProcs(), 2; got != want {
		t.Fatalf("NumProcs = %d, want %d", got, want)
	}
	if got, want := p.NumBlocks(), 7; got != want {
		t.Fatalf("NumBlocks = %d, want %d", got, want)
	}
	if got, want := p.NumInstructions(), uint64(3+2+1+2+1+4+1); got != want {
		t.Fatalf("NumInstructions = %d, want %d", got, want)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBlockLookupAndKinds(t *testing.T) {
	p := buildTestProgram(t)
	loop, ok := p.BlockByName("main.loop")
	if !ok {
		t.Fatal("main.loop not found")
	}
	if loop.Kind != KindCondBranch {
		t.Fatalf("main.loop kind = %v, want condbranch", loop.Kind)
	}
	exit := p.MustBlock("main.exit")
	if loop.TakenSucc() != exit {
		t.Fatalf("taken successor of loop = %d, want exit %d", loop.TakenSucc(), exit)
	}
	callh := p.Block(p.MustBlock("main.callh"))
	if callh.Kind != KindCall {
		t.Fatalf("callh kind = %v, want call", callh.Kind)
	}
	if callh.Callee != p.MustProc("helper") {
		t.Fatalf("callh callee = %d, want helper", callh.Callee)
	}
	if callh.FallSucc() != p.MustBlock("main.back") {
		t.Fatal("call continuation should be main.back")
	}
	ret := p.Block(p.MustBlock("helper.ret"))
	if ret.Kind != KindReturn || len(ret.Succs) != 0 {
		t.Fatal("helper.ret should be a return with no successors")
	}
}

func TestValidEdge(t *testing.T) {
	p := buildTestProgram(t)
	id := p.MustBlock
	cases := []struct {
		from, to string
		want     bool
	}{
		{"main.entry", "main.loop", true},    // fall-through
		{"main.entry", "main.exit", false},   // not a successor
		{"main.loop", "main.callh", true},    // cond not-taken
		{"main.loop", "main.exit", true},     // cond taken
		{"main.loop", "main.back", false},    // not a successor
		{"main.callh", "helper.entry", true}, // call edge
		{"main.callh", "helper.ret", false},  // call must hit entry
		{"main.back", "main.loop", true},     // jump
		{"helper.ret", "main.back", true},    // return to continuation
		{"helper.ret", "main.entry", false},  // not a continuation
	}
	for _, c := range cases {
		if got := p.ValidEdge(id(c.from), id(c.to)); got != c.want {
			t.Errorf("ValidEdge(%s -> %s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("unknown branch target", func(t *testing.T) {
		b := NewBuilder()
		pr := b.Proc("f", "m")
		pr.Cond("entry", 1, "nowhere")
		pr.Ret("r", 1)
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown label") {
			t.Fatalf("want unknown-label error, got %v", err)
		}
	})
	t.Run("unknown callee", func(t *testing.T) {
		b := NewBuilder()
		pr := b.Proc("f", "m")
		pr.Call("entry", 1, "ghost")
		pr.Ret("r", 1)
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown procedure") {
			t.Fatalf("want unknown-procedure error, got %v", err)
		}
	})
	t.Run("fall off end", func(t *testing.T) {
		b := NewBuilder()
		b.Proc("f", "m").Fall("entry", 1)
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "falls off") {
			t.Fatalf("want falls-off-end error, got %v", err)
		}
	})
	t.Run("empty proc", func(t *testing.T) {
		b := NewBuilder()
		b.Proc("f", "m")
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no blocks") {
			t.Fatalf("want no-blocks error, got %v", err)
		}
	})
	t.Run("call needs continuation", func(t *testing.T) {
		b := NewBuilder()
		b.Proc("g", "m").Ret("entry", 1)
		b.Proc("f", "m").Call("entry", 1, "g")
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "continuation") {
			t.Fatalf("want continuation error, got %v", err)
		}
	})
}

func TestBuilderPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate proc name")
		}
	}()
	b := NewBuilder()
	b.Proc("f", "m")
	b.Proc("f", "m")
}

func TestOriginalLayout(t *testing.T) {
	p := buildTestProgram(t)
	l := OriginalLayout(p)
	if err := l.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Blocks must be consecutive in declaration order starting at 0.
	var want uint64
	for i := range p.Procs {
		for _, bid := range p.Procs[i].Blocks {
			if got := l.AddrOf(bid); got != want {
				t.Fatalf("block %s addr = %d, want %d", p.Block(bid).Name, got, want)
			}
			want += p.Block(bid).SizeBytes()
		}
	}
	if l.End != want {
		t.Fatalf("End = %d, want %d", l.End, want)
	}
	if l.End != p.NumInstructions()*InstrBytes {
		t.Fatalf("End = %d, want %d bytes", l.End, p.NumInstructions()*InstrBytes)
	}
}

func TestLayoutValidateCatchesOverlap(t *testing.T) {
	p := buildTestProgram(t)
	l := OriginalLayout(p)
	// Force an overlap.
	l.Addr[l.Order[1]] = l.Addr[l.Order[0]]
	if err := l.Validate(p); err == nil {
		t.Fatal("Validate should reject overlapping blocks")
	}
}

func TestLayoutValidateCatchesDuplicateOrder(t *testing.T) {
	p := buildTestProgram(t)
	l := OriginalLayout(p)
	l.Order[1] = l.Order[0]
	if err := l.Validate(p); err == nil {
		t.Fatal("Validate should reject duplicated order entries")
	}
}

// Property: NewLayoutFromOrder over any permutation yields a valid
// layout whose End equals the total code size.
func TestLayoutPermutationProperty(t *testing.T) {
	p := buildTestProgram(t)
	n := p.NumBlocks()
	f := func(seed uint32) bool {
		// Derive a permutation from the seed (Fisher–Yates with an
		// xorshift generator, no external deps).
		order := make([]BlockID, n)
		for i := range order {
			order[i] = BlockID(i)
		}
		s := seed | 1
		for i := n - 1; i > 0; i-- {
			s ^= s << 13
			s ^= s >> 17
			s ^= s << 5
			j := int(s) % (i + 1)
			if j < 0 {
				j = -j
			}
			order[i], order[j] = order[j], order[i]
		}
		l := NewLayoutFromOrder("perm", p, order)
		return l.Validate(p) == nil && l.End == p.NumInstructions()*InstrBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewLayoutFromAddrsSortsAndComputesEnd(t *testing.T) {
	p := buildTestProgram(t)
	addr := make([]uint64, p.NumBlocks())
	// Reverse layout with gaps.
	var a uint64 = 1 << 20
	for i := p.NumBlocks() - 1; i >= 0; i-- {
		addr[BlockID(i)] = a
		a += p.Block(BlockID(i)).SizeBytes() + 64
	}
	l := NewLayoutFromAddrs("gappy", p, addr)
	if err := l.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if l.Order[0] != BlockID(p.NumBlocks()-1) {
		t.Fatalf("first block in order = %d, want %d", l.Order[0], p.NumBlocks()-1)
	}
	wantEnd := addr[0] + p.Block(0).SizeBytes()
	if l.End != wantEnd {
		t.Fatalf("End = %d, want %d", l.End, wantEnd)
	}
}

func TestBlockKindString(t *testing.T) {
	kinds := map[BlockKind]string{
		KindFallThrough: "fallthrough",
		KindCondBranch:  "condbranch",
		KindJump:        "jump",
		KindCall:        "call",
		KindReturn:      "return",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(k), got, want)
		}
	}
	if !KindCondBranch.IsBranch() || !KindJump.IsBranch() || KindCall.IsBranch() {
		t.Error("IsBranch misclassifies kinds")
	}
}

func TestColdProcAndAutoLabels(t *testing.T) {
	b := NewBuilder()
	c := b.ColdProc("unused_error_path", "elog")
	c.Fall("", 2) // auto label b0
	c.Ret("", 1)  // auto label b1
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pr, _ := p.ProcByName("unused_error_path")
	if !pr.Cold {
		t.Fatal("proc should be cold")
	}
	if _, ok := p.BlockByName("unused_error_path.b0"); !ok {
		t.Fatal("auto label b0 missing")
	}
}
