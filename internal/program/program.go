// Package program models a compiled program image at basic-block
// granularity: procedures, basic blocks with instruction sizes and
// terminator kinds, static control-flow successors, and code layouts
// (assignments of basic blocks to instruction addresses).
//
// The model mirrors what the paper obtains by instrumenting an Alpha
// binary of PostgreSQL: a static control-flow graph over which dynamic
// traces are recorded, profiles aggregated, and code layouts computed.
// Instructions are fixed-size (4 bytes), as on the Alpha.
package program

import "fmt"

// InstrBytes is the size of one instruction in bytes (Alpha-style RISC).
const InstrBytes = 4

// ProcID identifies a procedure within a Program. IDs are dense,
// starting at 0, in declaration order.
type ProcID int32

// BlockID identifies a basic block within a Program. IDs are dense,
// starting at 0, in declaration order (procedure by procedure).
type BlockID int32

// NoProc is the ProcID used when a callee is statically unknown
// (indirect calls).
const NoProc ProcID = -1

// NoBlock is an invalid BlockID sentinel.
const NoBlock BlockID = -1

// BlockKind classifies a basic block by its terminator, following the
// paper's taxonomy in Section 4.2.
type BlockKind uint8

const (
	// KindFallThrough blocks do not end in a branch; execution always
	// continues at the next block of the same procedure.
	KindFallThrough BlockKind = iota
	// KindCondBranch blocks end in a conditional branch. Successor 0 is
	// the fall-through block, successor 1 the taken target.
	KindCondBranch
	// KindJump blocks end in an unconditional branch. They have exactly
	// one successor, the target.
	KindJump
	// KindCall blocks end in a subroutine call. Successor 0 is the
	// continuation block (where the callee returns to); Callee names the
	// static callee, or NoProc for an indirect call.
	KindCall
	// KindReturn blocks end in a subroutine return. They have no static
	// successors; the dynamic successor is the caller's continuation.
	KindReturn
)

// String returns the lower-case name of the kind.
func (k BlockKind) String() string {
	switch k {
	case KindFallThrough:
		return "fallthrough"
	case KindCondBranch:
		return "condbranch"
	case KindJump:
		return "jump"
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	}
	return fmt.Sprintf("BlockKind(%d)", uint8(k))
}

// IsBranch reports whether the terminator is a conditional or
// unconditional branch (the paper's "Branch" class).
func (k BlockKind) IsBranch() bool { return k == KindCondBranch || k == KindJump }

// Block is one basic block of the program image.
type Block struct {
	ID    BlockID
	Proc  ProcID
	Name  string // "proc.label", unique within the program
	Size  int    // number of instructions, including the terminator
	Kind  BlockKind
	Succs []BlockID // static successors; layout depends on Kind
	// Callee is the static callee for KindCall blocks, or NoProc for
	// indirect calls. Unused for other kinds.
	Callee ProcID
}

// SizeBytes returns the block size in bytes.
func (b *Block) SizeBytes() uint64 { return uint64(b.Size) * InstrBytes }

// FallSucc returns the fall-through successor for fall-through,
// conditional-branch and call blocks, or NoBlock if none exists.
func (b *Block) FallSucc() BlockID {
	switch b.Kind {
	case KindFallThrough, KindCondBranch, KindCall:
		if len(b.Succs) > 0 {
			return b.Succs[0]
		}
	}
	return NoBlock
}

// TakenSucc returns the taken target of a conditional branch, or the
// target of an unconditional jump, or NoBlock otherwise.
func (b *Block) TakenSucc() BlockID {
	switch b.Kind {
	case KindCondBranch:
		if len(b.Succs) > 1 {
			return b.Succs[1]
		}
	case KindJump:
		if len(b.Succs) > 0 {
			return b.Succs[0]
		}
	}
	return NoBlock
}

// Proc is one procedure (function) of the program image.
type Proc struct {
	ID     ProcID
	Name   string // unique within the program
	Module string // link-time module (source grouping); informational
	Blocks []BlockID
	// Entry is the first block; always equal to Blocks[0].
	Entry BlockID
	// Cold marks procedures generated to model never-executed library,
	// parser and error-handling code in the binary image.
	Cold bool
}

// Program is an immutable program image: the full static CFG.
type Program struct {
	Procs  []Proc
	Blocks []Block

	procByName  map[string]ProcID
	blockByName map[string]BlockID

	// isContinuation[b] is true when b is the fall-through continuation
	// of some call block; used to validate dynamic return edges.
	isContinuation []bool

	totalInstr uint64
}

// NumProcs returns the number of procedures.
func (p *Program) NumProcs() int { return len(p.Procs) }

// NumBlocks returns the number of basic blocks.
func (p *Program) NumBlocks() int { return len(p.Blocks) }

// NumInstructions returns the total static instruction count.
func (p *Program) NumInstructions() uint64 { return p.totalInstr }

// Proc returns the procedure with the given ID.
func (p *Program) Proc(id ProcID) *Proc { return &p.Procs[id] }

// Block returns the block with the given ID.
func (p *Program) Block(id BlockID) *Block { return &p.Blocks[id] }

// ProcByName returns the procedure named name.
func (p *Program) ProcByName(name string) (*Proc, bool) {
	id, ok := p.procByName[name]
	if !ok {
		return nil, false
	}
	return &p.Procs[id], true
}

// MustProc returns the ProcID for name, panicking if absent. Intended
// for wiring up statically-known kernel procedures at init time.
func (p *Program) MustProc(name string) ProcID {
	id, ok := p.procByName[name]
	if !ok {
		panic("program: no procedure named " + name)
	}
	return id
}

// BlockByName returns the block named "proc.label".
func (p *Program) BlockByName(name string) (*Block, bool) {
	id, ok := p.blockByName[name]
	if !ok {
		return nil, false
	}
	return &p.Blocks[id], true
}

// MustBlock returns the BlockID for "proc.label", panicking if absent.
func (p *Program) MustBlock(name string) BlockID {
	id, ok := p.blockByName[name]
	if !ok {
		panic("program: no block named " + name)
	}
	return id
}

// EntryOf returns the entry block of the named procedure.
func (p *Program) EntryOf(name string) BlockID {
	return p.Procs[p.MustProc(name)].Entry
}

// ValidEdge reports whether control can legally transfer from block
// "from" directly to block "to" in one step: a static CFG successor, a
// call into the callee's entry, or a return to any continuation block.
// Returns from a procedure may go to any call continuation whose call
// block could (for indirect calls) or does (for direct calls) target
// the returning procedure; for simplicity and because the tracer
// validates call/return pairing with a stack, ValidEdge accepts any
// call-continuation as the target of a return.
func (p *Program) ValidEdge(from, to BlockID) bool {
	fb := &p.Blocks[from]
	switch fb.Kind {
	case KindFallThrough:
		return len(fb.Succs) == 1 && fb.Succs[0] == to
	case KindCondBranch, KindJump:
		for _, s := range fb.Succs {
			if s == to {
				return true
			}
		}
		return false
	case KindCall:
		tb := &p.Blocks[to]
		if fb.Callee != NoProc {
			return p.Procs[fb.Callee].Entry == to
		}
		// Indirect call: any procedure entry is legal.
		return p.Procs[tb.Proc].Entry == to
	case KindReturn:
		// Legal if 'to' is the continuation of some call block.
		return p.isContinuation[to]
	}
	return false
}

// Validate checks structural invariants of the program image. It is
// run by Builder.Build and exposed for tests.
func (p *Program) Validate() error {
	for i := range p.Procs {
		pr := &p.Procs[i]
		if len(pr.Blocks) == 0 {
			return fmt.Errorf("proc %q has no blocks", pr.Name)
		}
		if pr.Entry != pr.Blocks[0] {
			return fmt.Errorf("proc %q entry %d is not its first block", pr.Name, pr.Entry)
		}
		for j, bid := range pr.Blocks {
			b := &p.Blocks[bid]
			if b.Proc != pr.ID {
				return fmt.Errorf("block %q recorded under wrong proc", b.Name)
			}
			if b.Size <= 0 {
				return fmt.Errorf("block %q has non-positive size %d", b.Name, b.Size)
			}
			next := NoBlock
			if j+1 < len(pr.Blocks) {
				next = pr.Blocks[j+1]
			}
			switch b.Kind {
			case KindFallThrough:
				if len(b.Succs) != 1 || b.Succs[0] != next {
					return fmt.Errorf("fall-through block %q must precede its successor", b.Name)
				}
			case KindCondBranch:
				if len(b.Succs) != 2 {
					return fmt.Errorf("cond block %q needs 2 successors, has %d", b.Name, len(b.Succs))
				}
				if b.Succs[0] != next {
					return fmt.Errorf("cond block %q fall-through is not the next block", b.Name)
				}
				if p.Blocks[b.Succs[1]].Proc != pr.ID {
					return fmt.Errorf("cond block %q branches outside its procedure", b.Name)
				}
			case KindJump:
				if len(b.Succs) != 1 {
					return fmt.Errorf("jump block %q needs 1 successor", b.Name)
				}
				if p.Blocks[b.Succs[0]].Proc != pr.ID {
					return fmt.Errorf("jump block %q jumps outside its procedure", b.Name)
				}
			case KindCall:
				if len(b.Succs) != 1 || b.Succs[0] != next {
					return fmt.Errorf("call block %q must fall through to its continuation", b.Name)
				}
				if b.Callee != NoProc && (int(b.Callee) < 0 || int(b.Callee) >= len(p.Procs)) {
					return fmt.Errorf("call block %q has invalid callee", b.Name)
				}
			case KindReturn:
				if len(b.Succs) != 0 {
					return fmt.Errorf("return block %q must have no static successors", b.Name)
				}
			default:
				return fmt.Errorf("block %q has unknown kind", b.Name)
			}
		}
	}
	return nil
}

// buildAux precomputes derived lookup structures; called by the Builder.
func (p *Program) buildAux() {
	p.isContinuation = make([]bool, len(p.Blocks))
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if b.Kind == KindCall && len(b.Succs) == 1 {
			p.isContinuation[b.Succs[0]] = true
		}
	}
}
