package program

import "fmt"

// Builder assembles a Program. Procedures and blocks are declared in
// the order they will appear in the original (link-order) code layout,
// which is the baseline layout the paper compares against.
//
// Block successor references may name labels that are declared later;
// they are resolved at Build time.
type Builder struct {
	procs  []*procBuilder
	byName map[string]*procBuilder
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{byName: make(map[string]*procBuilder)}
}

// Proc declares a procedure. Names must be unique.
func (b *Builder) Proc(name, module string) *ProcBuilder {
	if _, dup := b.byName[name]; dup {
		panic(fmt.Sprintf("program: duplicate procedure %q", name))
	}
	pb := &procBuilder{name: name, module: module, labels: make(map[string]int)}
	b.procs = append(b.procs, pb)
	b.byName[name] = pb
	return &ProcBuilder{pb: pb}
}

// ColdProc declares a procedure marked as cold (never expected to run).
func (b *Builder) ColdProc(name, module string) *ProcBuilder {
	p := b.Proc(name, module)
	p.pb.cold = true
	return p
}

// HasProc reports whether a procedure with the given name exists.
func (b *Builder) HasProc(name string) bool {
	_, ok := b.byName[name]
	return ok
}

// NumProcs returns the number of procedures declared so far.
func (b *Builder) NumProcs() int { return len(b.procs) }

// Build resolves all references, validates the program and returns it.
func (b *Builder) Build() (*Program, error) {
	p := &Program{
		procByName:  make(map[string]ProcID, len(b.procs)),
		blockByName: make(map[string]BlockID),
	}
	// First pass: assign IDs.
	for _, pb := range b.procs {
		if len(pb.blocks) == 0 {
			return nil, fmt.Errorf("program: procedure %q has no blocks", pb.name)
		}
		pid := ProcID(len(p.Procs))
		pr := Proc{ID: pid, Name: pb.name, Module: pb.module, Cold: pb.cold}
		for _, bb := range pb.blocks {
			bid := BlockID(len(p.Blocks))
			name := pb.name + "." + bb.label
			if _, dup := p.blockByName[name]; dup {
				return nil, fmt.Errorf("program: duplicate block %q", name)
			}
			p.blockByName[name] = bid
			pr.Blocks = append(pr.Blocks, bid)
			p.Blocks = append(p.Blocks, Block{
				ID:     bid,
				Proc:   pid,
				Name:   name,
				Size:   bb.size,
				Kind:   bb.kind,
				Callee: NoProc,
			})
			p.totalInstr += uint64(bb.size)
		}
		pr.Entry = pr.Blocks[0]
		p.procByName[pb.name] = pid
		p.Procs = append(p.Procs, pr)
	}
	// Second pass: resolve successors and callees.
	for _, pb := range b.procs {
		pid := p.procByName[pb.name]
		pr := &p.Procs[pid]
		for j, bb := range pb.blocks {
			blk := &p.Blocks[pr.Blocks[j]]
			next := NoBlock
			if j+1 < len(pr.Blocks) {
				next = pr.Blocks[j+1]
			}
			switch bb.kind {
			case KindFallThrough:
				if next == NoBlock {
					return nil, fmt.Errorf("program: %s falls off the end of the procedure", blk.Name)
				}
				blk.Succs = []BlockID{next}
			case KindCondBranch:
				if next == NoBlock {
					return nil, fmt.Errorf("program: %s falls off the end of the procedure", blk.Name)
				}
				tgt, ok := pb.labels[bb.target]
				if !ok {
					return nil, fmt.Errorf("program: %s branches to unknown label %q", blk.Name, bb.target)
				}
				blk.Succs = []BlockID{next, pr.Blocks[tgt]}
			case KindJump:
				tgt, ok := pb.labels[bb.target]
				if !ok {
					return nil, fmt.Errorf("program: %s jumps to unknown label %q", blk.Name, bb.target)
				}
				blk.Succs = []BlockID{pr.Blocks[tgt]}
			case KindCall:
				if next == NoBlock {
					return nil, fmt.Errorf("program: call block %s needs a continuation block", blk.Name)
				}
				blk.Succs = []BlockID{next}
				if bb.target != "" {
					cp, ok := p.procByName[bb.target]
					if !ok {
						return nil, fmt.Errorf("program: %s calls unknown procedure %q", blk.Name, bb.target)
					}
					blk.Callee = cp
				}
			case KindReturn:
				// No successors.
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.buildAux()
	return p, nil
}

// MustBuild is Build, panicking on error. The kernel image is built at
// init time from trusted, tested definitions.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

type blockDecl struct {
	label  string
	size   int
	kind   BlockKind
	target string // branch/jump label or callee proc name
}

type procBuilder struct {
	name   string
	module string
	cold   bool
	blocks []blockDecl
	labels map[string]int
}

// ProcBuilder declares the basic blocks of one procedure, in layout
// order. Each declaration appends one block; the terminator kind is
// chosen by the method used.
type ProcBuilder struct {
	pb *procBuilder
}

func (p *ProcBuilder) add(label string, size int, kind BlockKind, target string) *ProcBuilder {
	if label == "" {
		label = fmt.Sprintf("b%d", len(p.pb.blocks))
	}
	if _, dup := p.pb.labels[label]; dup {
		panic(fmt.Sprintf("program: duplicate label %q in %q", label, p.pb.name))
	}
	p.pb.labels[label] = len(p.pb.blocks)
	p.pb.blocks = append(p.pb.blocks, blockDecl{label: label, size: size, kind: kind, target: target})
	return p
}

// Fall appends a fall-through block.
func (p *ProcBuilder) Fall(label string, size int) *ProcBuilder {
	return p.add(label, size, KindFallThrough, "")
}

// Cond appends a conditional-branch block whose taken target is the
// block labelled target (fall-through is the next declared block).
func (p *ProcBuilder) Cond(label string, size int, target string) *ProcBuilder {
	return p.add(label, size, KindCondBranch, target)
}

// Jump appends an unconditional-branch block targeting label target.
func (p *ProcBuilder) Jump(label string, size int, target string) *ProcBuilder {
	return p.add(label, size, KindJump, target)
}

// Call appends a call block invoking procedure callee; execution
// continues at the next declared block after the callee returns.
func (p *ProcBuilder) Call(label string, size int, callee string) *ProcBuilder {
	return p.add(label, size, KindCall, callee)
}

// CallIndirect appends an indirect-call block (callee unknown
// statically, e.g. through a function pointer in the executor's
// dispatch tables).
func (p *ProcBuilder) CallIndirect(label string, size int) *ProcBuilder {
	return p.add(label, size, KindCall, "")
}

// Ret appends a return block.
func (p *ProcBuilder) Ret(label string, size int) *ProcBuilder {
	return p.add(label, size, KindReturn, "")
}

// Name returns the procedure name being built.
func (p *ProcBuilder) Name() string { return p.pb.name }
