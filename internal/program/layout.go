package program

import (
	"fmt"
	"sort"
)

// Layout assigns every basic block of a program a starting address in
// an instruction address space. Layouts are what the paper's
// reordering algorithms produce: the code itself is unchanged (block
// sizes are preserved), only the addresses fed to the cache and fetch
// simulators differ (Section 7.1 of the paper).
type Layout struct {
	Name string
	// Addr[b] is the byte address of the first instruction of block b.
	Addr []uint64
	// Order lists the blocks in ascending address order.
	Order []BlockID
	// End is the first byte address past the laid-out image.
	End uint64
}

// AddrOf returns the byte address of the first instruction of b.
func (l *Layout) AddrOf(b BlockID) uint64 { return l.Addr[b] }

// NewLayoutFromOrder builds a Layout that places the given blocks
// consecutively starting at address 0, in the order given. Every block
// of the program must appear exactly once; Validate enforces this.
func NewLayoutFromOrder(name string, p *Program, order []BlockID) *Layout {
	l := &Layout{
		Name:  name,
		Addr:  make([]uint64, p.NumBlocks()),
		Order: order,
	}
	var addr uint64
	for _, b := range order {
		l.Addr[b] = addr
		addr += p.Block(b).SizeBytes()
	}
	l.End = addr
	return l
}

// NewLayoutFromAddrs builds a Layout from an explicit address map
// (used by the CFA mapping algorithms, which leave gaps). The Order is
// derived by sorting blocks by address.
func NewLayoutFromAddrs(name string, p *Program, addr []uint64) *Layout {
	order := make([]BlockID, p.NumBlocks())
	for i := range order {
		order[i] = BlockID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		ai, aj := addr[order[i]], addr[order[j]]
		if ai != aj {
			return ai < aj
		}
		return order[i] < order[j]
	})
	var end uint64
	for _, b := range order {
		if e := addr[b] + p.Block(b).SizeBytes(); e > end {
			end = e
		}
	}
	return &Layout{Name: name, Addr: addr, Order: order, End: end}
}

// OriginalLayout returns the link-order layout: procedures in
// declaration order, blocks within each procedure in declaration
// order. This is the paper's "orig" baseline.
func OriginalLayout(p *Program) *Layout {
	order := make([]BlockID, 0, p.NumBlocks())
	for i := range p.Procs {
		order = append(order, p.Procs[i].Blocks...)
	}
	return NewLayoutFromOrder("orig", p, order)
}

// Validate checks that the layout maps every block to a distinct,
// non-overlapping address range.
func (l *Layout) Validate(p *Program) error {
	if len(l.Addr) != p.NumBlocks() {
		return fmt.Errorf("layout %s: %d addrs for %d blocks", l.Name, len(l.Addr), p.NumBlocks())
	}
	if len(l.Order) != p.NumBlocks() {
		return fmt.Errorf("layout %s: order has %d entries, want %d", l.Name, len(l.Order), p.NumBlocks())
	}
	seen := make([]bool, p.NumBlocks())
	for _, b := range l.Order {
		if b < 0 || int(b) >= p.NumBlocks() {
			return fmt.Errorf("layout %s: order contains invalid block %d", l.Name, b)
		}
		if seen[b] {
			return fmt.Errorf("layout %s: block %d appears twice in order", l.Name, b)
		}
		seen[b] = true
	}
	for i := 1; i < len(l.Order); i++ {
		prev, cur := l.Order[i-1], l.Order[i]
		prevEnd := l.Addr[prev] + p.Block(prev).SizeBytes()
		if l.Addr[cur] < prevEnd {
			return fmt.Errorf("layout %s: blocks %s and %s overlap",
				l.Name, p.Block(prev).Name, p.Block(cur).Name)
		}
	}
	return nil
}
