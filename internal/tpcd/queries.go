package tpcd

// The TPC-D query set, adapted to the kernel's SQL subset: correlated
// subqueries are replaced by their dominant outer block with
// representative constants (documented per query), which preserves the
// operator mix — scans, multi-way joins, grouping, sorting — that
// drives the paper's instruction-reference behaviour. Query numbers
// follow the TPC-D specification.
//
// Training set (profile): Q3, Q4, Q5, Q6, Q9 on the Btree database.
// Test set (evaluation): Q2, Q3, Q4, Q6, Q11, Q12, Q13, Q14, Q15, Q17
// on both databases (Section 7 of the paper).
var queryText = map[int]string{
	// Q2 (minimum-cost supplier; subquery on min supplycost replaced by
	// a cost ceiling): part/supplier/partsupp/nation/region join.
	2: `select s_acctbal, s_name, n_name, p_partkey, ps_supplycost
	    from part, supplier, partsupp, nation, region
	    where p_partkey = ps_partkey and s_suppkey = ps_suppkey
	      and s_nationkey = n_nationkey and n_regionkey = r_regionkey
	      and r_name = 'EUROPE' and p_size = 15 and ps_supplycost < 100
	    order by s_acctbal desc, n_name, s_name limit 100`,

	// Q3: shipping priority.
	3: `select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
	           o_orderdate, o_shippriority
	    from customer, orders, lineitem
	    where c_mktsegment = 'BUILDING' and c_custkey = o_custkey
	      and l_orderkey = o_orderkey and o_orderdate < '1995-03-15'
	      and l_shipdate > '1995-03-15'
	    group by l_orderkey, o_orderdate, o_shippriority
	    order by revenue desc, o_orderdate limit 10`,

	// Q4: order priority checking (EXISTS folded into the join).
	4: `select o_orderpriority, count(*) as order_count
	    from orders, lineitem
	    where o_orderdate >= '1993-07-01' and o_orderdate < '1993-10-01'
	      and l_orderkey = o_orderkey and l_commitdate < l_receiptdate
	    group by o_orderpriority
	    order by o_orderpriority`,

	// Q5: local supplier volume.
	5: `select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
	    from customer, orders, lineitem, supplier, nation, region
	    where c_custkey = o_custkey and l_orderkey = o_orderkey
	      and l_suppkey = s_suppkey and s_nationkey = n_nationkey
	      and n_regionkey = r_regionkey and r_name = 'ASIA'
	      and o_orderdate >= '1994-01-01' and o_orderdate < '1995-01-01'
	    group by n_name
	    order by revenue desc`,

	// Q6: forecasting revenue change.
	6: `select sum(l_extendedprice * l_discount) as revenue
	    from lineitem
	    where l_shipdate >= '1994-01-01' and l_shipdate < '1995-01-01'
	      and l_discount between 0.05 and 0.07 and l_quantity < 24`,

	// Q9: product type profit measure (nation/year profit).
	9: `select n_name, sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) as sum_profit
	    from part, supplier, lineitem, partsupp, nation
	    where s_suppkey = l_suppkey and ps_suppkey = l_suppkey
	      and ps_partkey = l_partkey and p_partkey = l_partkey
	      and s_nationkey = n_nationkey and p_name like '%green%'
	    group by n_name
	    order by n_name`,

	// Q11: important stock identification (HAVING-subquery replaced by
	// a value floor).
	11: `select ps_partkey, sum(ps_supplycost * ps_availqty) as val
	     from partsupp, supplier, nation
	     where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
	       and n_name = 'GERMANY'
	     group by ps_partkey
	     order by val desc limit 50`,

	// Q12: shipping modes and order priority.
	12: `select l_shipmode, count(*) as line_count
	     from orders, lineitem
	     where o_orderkey = l_orderkey
	       and l_shipmode in ('MAIL', 'SHIP')
	       and l_commitdate < l_receiptdate and l_shipdate < l_commitdate
	       and l_receiptdate >= '1994-01-01' and l_receiptdate < '1995-01-01'
	     group by l_shipmode
	     order by l_shipmode`,

	// Q13 (customer distribution; the outer join becomes an inner join
	// in our subset): orders per customer bucket.
	13: `select c_custkey, count(*) as c_count
	     from customer, orders
	     where c_custkey = o_custkey
	       and o_orderpriority <> '1-URGENT'
	     group by c_custkey
	     order by c_count desc, c_custkey limit 100`,

	// Q14: promotion effect (CASE folded to a LIKE filter).
	14: `select sum(l_extendedprice * (1 - l_discount)) as promo_revenue
	     from lineitem, part
	     where l_partkey = p_partkey
	       and l_shipdate >= '1995-09-01' and l_shipdate < '1995-10-01'
	       and p_type like 'PROMO%'`,

	// Q15: top supplier (the revenue view is inlined as a grouped scan).
	15: `select l_suppkey, sum(l_extendedprice * (1 - l_discount)) as total_revenue
	     from lineitem
	     where l_shipdate >= '1996-01-01' and l_shipdate < '1996-04-01'
	     group by l_suppkey
	     order by total_revenue desc limit 1`,

	// Q17: small-quantity-order revenue (avg-quantity subquery replaced
	// by its specification mean of 0.2*avg(quantity) ~= 5).
	17: `select sum(l_extendedprice) as avg_yearly
	     from lineitem, part
	     where p_partkey = l_partkey and p_brand = 'Brand#23'
	       and p_container = 'MED BOX' and l_quantity < 5`,
}

// TrainingQueries is the paper's profile workload: Q3, Q4, Q5, Q6, Q9
// on the Btree-indexed database (Section 4).
var TrainingQueries = []int{3, 4, 5, 6, 9}

// TestQueries is the paper's evaluation workload: Q2, Q3, Q4, Q6, Q11,
// Q12, Q13, Q14, Q15, Q17 on both databases (Section 7).
var TestQueries = []int{2, 3, 4, 6, 11, 12, 13, 14, 15, 17}

// Query returns the SQL text for a TPC-D query number.
func Query(n int) (string, bool) {
	q, ok := queryText[n]
	return q, ok
}

// AllQueryNumbers lists the implemented queries in ascending order.
func AllQueryNumbers() []int {
	return []int{2, 3, 4, 5, 6, 9, 11, 12, 13, 14, 15, 17}
}
