package tpcd

import (
	"testing"

	"repro/internal/db/executor"
	"repro/internal/db/sql"
	"repro/internal/db/value"
	"repro/internal/kernel"
)

func TestSmokeAllQueries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SF = 0.001
	db, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img := kernel.New(kernel.Config{ColdProcs: 10, Seed: 1})
	ses := img.NewSession(true)
	db.Buf.FlushAll()
	c := executor.NewCtx(ses)
	for _, qn := range AllQueryNumbers() {
		q, _ := Query(qn)
		rows, _, err := sql.Exec(db, c, q)
		if err != nil {
			t.Fatalf("Q%d: %v", qn, err)
		}
		if err := ses.Err(); err != nil {
			t.Fatalf("Q%d: trace validation: %v", qn, err)
		}
		t.Logf("Q%d: %d rows, trace now %d events", qn, len(rows), ses.Trace().Len())
	}
}

func TestCardinalityScaling(t *testing.T) {
	if Cardinality("region", 0.001) != 5 || Cardinality("nation", 2) != 25 {
		t.Fatal("fixed tables must not scale")
	}
	if Cardinality("lineitem", 0.001) != 6000 {
		t.Fatalf("lineitem at 0.001 = %d", Cardinality("lineitem", 0.001))
	}
	if Cardinality("orders", 0.0000001) != 1 {
		t.Fatal("cardinality must be at least 1")
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SF = 0.0005
	a, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"customer", "orders", "lineitem"} {
		if a.NumRows(tbl) != b.NumRows(tbl) {
			t.Fatalf("%s cardinality differs across identical builds", tbl)
		}
	}
}

func TestQuerySetsAreImplemented(t *testing.T) {
	for _, qn := range TrainingQueries {
		if _, ok := Query(qn); !ok {
			t.Errorf("training query %d missing", qn)
		}
	}
	for _, qn := range TestQueries {
		if _, ok := Query(qn); !ok {
			t.Errorf("test query %d missing", qn)
		}
	}
	if _, ok := Query(99); ok {
		t.Error("query 99 should not exist")
	}
}

func TestForeignKeysResolve(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SF = 0.0005
	db, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := executor.NewCtx(nil)
	// Every order's customer must exist: an inner join loses no orders.
	rows, _, err := sql.Exec(db, c, "select count(*) from orders")
	if err != nil {
		t.Fatal(err)
	}
	joined, _, err := sql.Exec(db, c, "select count(*) from orders, customer where o_custkey = c_custkey")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].I != joined[0][0].I {
		t.Fatalf("FK violation: %d orders, %d join matches", rows[0][0].I, joined[0][0].I)
	}
}

func TestQ6AgainstNaiveEvaluation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SF = 0.0005
	db, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := executor.NewCtx(nil)
	q, _ := tpcdQuery6()
	rows, _, err := sql.Exec(db, c, q)
	if err != nil {
		t.Fatal(err)
	}
	// Naive recomputation over a raw scan.
	raw, _, err := sql.Exec(db, c,
		"select l_shipdate, l_discount, l_quantity, l_extendedprice from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	lo := value.MakeDate(1994, 1, 1)
	hi := value.MakeDate(1995, 1, 1)
	var want float64
	for _, r := range raw {
		if r[0].I >= lo && r[0].I < hi &&
			r[1].F >= 0.05 && r[1].F <= 0.07 && r[2].F < 24 {
			want += r[3].F * r[1].F
		}
	}
	got := rows[0][0].F
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Q6 revenue = %v, naive = %v", got, want)
	}
}

func tpcdQuery6() (string, bool) { return Query(6) }
