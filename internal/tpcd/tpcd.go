// Package tpcd generates the TPC-D benchmark database (the 8-table
// decision-support schema at a configurable scale factor) and defines
// the paper's training and test query sets. The generator is a
// deterministic, seeded miniature of dbgen: cardinalities, key
// structure, foreign-key references, value domains and date ranges
// follow the specification; text columns use compact synthetic
// vocabularies.
package tpcd

import (
	"fmt"
	"math/rand"

	"repro/internal/db/catalog"
	"repro/internal/db/engine"
	"repro/internal/db/value"
)

// IndexKind selects the paper's Btree-indexed or Hash-indexed database.
type IndexKind = catalog.IndexKind

// Config drives generation.
type Config struct {
	// SF is the scale factor; SF=1 is the standard 1 GB database
	// (6M lineitem rows). The paper uses 0.1; the experiments here
	// default far smaller to keep runs laptop-scale.
	SF float64
	// Seed makes generation deterministic.
	Seed int64
	// Indexes picks B-tree or hash indices (the paper builds one
	// database of each kind).
	Indexes IndexKind
	// BufferFrames sizes the buffer pool.
	BufferFrames int
}

// DefaultConfig returns a laptop-scale setup.
func DefaultConfig() Config {
	return Config{SF: 0.002, Seed: 42, Indexes: catalog.BTree, BufferFrames: 2048}
}

// Cardinality of each table at SF=1, per the TPC-D specification.
var baseCard = map[string]int{
	"region":   5,
	"nation":   25,
	"supplier": 10000,
	"customer": 150000,
	"part":     200000,
	"partsupp": 800000,
	"orders":   1500000,
	"lineitem": 6000000, // approximate; dbgen draws 1-7 items per order
}

// Cardinality returns a table's row count at the given scale factor.
func Cardinality(table string, sf float64) int {
	n := baseCard[table]
	if table == "region" || table == "nation" {
		return n // fixed-size tables
	}
	c := int(float64(n) * sf)
	if c < 1 {
		c = 1
	}
	return c
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipmodes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var returnflags = []string{"R", "A", "N"}
var linestatus = []string{"O", "F"}
var types1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var types2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var types3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
var containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP PKG", "JUMBO PKG"}
var colors = []string{"almond", "antique", "aquamarine", "azure", "beige", "blush",
	"chartreuse", "chocolate", "coral", "cornflower", "cream", "cyan", "dark", "deep",
	"dim", "dodger", "drab", "firebrick", "forest", "frosted", "gainsboro", "ghost",
	"goldenrod", "green", "grey", "honeydew", "hot", "indian", "ivory", "khaki",
	"lace", "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
	"maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo",
	"navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru",
	"pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy",
	"royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky", "slate",
	"smoke", "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise",
	"violet", "wheat", "white", "yellow"}

func col(name string, t value.Type) catalog.Column { return catalog.Column{Name: name, Type: t} }

// Schemas returns the 8 TPC-D table schemas (column subset sufficient
// for the query set; all names follow the specification).
func Schemas() map[string]*catalog.Schema {
	return map[string]*catalog.Schema{
		"region": catalog.NewSchema(
			col("r_regionkey", value.Int), col("r_name", value.Str)),
		"nation": catalog.NewSchema(
			col("n_nationkey", value.Int), col("n_name", value.Str),
			col("n_regionkey", value.Int)),
		"supplier": catalog.NewSchema(
			col("s_suppkey", value.Int), col("s_name", value.Str),
			col("s_nationkey", value.Int), col("s_acctbal", value.Float)),
		"customer": catalog.NewSchema(
			col("c_custkey", value.Int), col("c_name", value.Str),
			col("c_nationkey", value.Int), col("c_mktsegment", value.Str),
			col("c_acctbal", value.Float)),
		"part": catalog.NewSchema(
			col("p_partkey", value.Int), col("p_name", value.Str),
			col("p_type", value.Str), col("p_size", value.Int),
			col("p_container", value.Str), col("p_retailprice", value.Float),
			col("p_brand", value.Str)),
		"partsupp": catalog.NewSchema(
			col("ps_partkey", value.Int), col("ps_suppkey", value.Int),
			col("ps_availqty", value.Int), col("ps_supplycost", value.Float)),
		"orders": catalog.NewSchema(
			col("o_orderkey", value.Int), col("o_custkey", value.Int),
			col("o_orderstatus", value.Str), col("o_totalprice", value.Float),
			col("o_orderdate", value.Date), col("o_orderpriority", value.Str),
			col("o_shippriority", value.Int)),
		"lineitem": catalog.NewSchema(
			col("l_orderkey", value.Int), col("l_partkey", value.Int),
			col("l_suppkey", value.Int), col("l_linenumber", value.Int),
			col("l_quantity", value.Float), col("l_extendedprice", value.Float),
			col("l_discount", value.Float), col("l_tax", value.Float),
			col("l_returnflag", value.Str), col("l_linestatus", value.Str),
			col("l_shipdate", value.Date), col("l_commitdate", value.Date),
			col("l_receiptdate", value.Date), col("l_shipmode", value.Str),
			col("l_shipinstruct", value.Str)),
	}
}

// pk/fk index plan: unique indices on primary keys, multi-entry
// indices on foreign keys, as the paper's database setup describes.
var indexPlan = []struct {
	table, column string
	unique        bool
}{
	{"region", "r_regionkey", true},
	{"nation", "n_nationkey", true},
	{"nation", "n_regionkey", false},
	{"supplier", "s_suppkey", true},
	{"supplier", "s_nationkey", false},
	{"customer", "c_custkey", true},
	{"customer", "c_nationkey", false},
	{"part", "p_partkey", true},
	{"partsupp", "ps_partkey", false},
	{"partsupp", "ps_suppkey", false},
	{"orders", "o_orderkey", true},
	{"orders", "o_custkey", false},
	{"orders", "o_orderdate", false},
	{"lineitem", "l_orderkey", false},
	{"lineitem", "l_partkey", false},
	{"lineitem", "l_suppkey", false},
	{"lineitem", "l_shipdate", false},
}

// TableNames lists the 8 TPC-D tables in load order.
var TableNames = []string{"region", "nation", "supplier", "customer",
	"part", "partsupp", "orders", "lineitem"}

// Load generates the TPC-D schema and data into an existing (empty)
// database, building indices after the load (bulk-load order, as
// dbgen + CREATE INDEX would). Generation is deterministic: the same
// Config.Seed always produces an identical database.
func Load(db *engine.DB, cfg Config) error {
	schemas := Schemas()
	for _, t := range TableNames {
		if _, err := db.CreateTable(t, schemas[t]); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if err := load(db, cfg, rng); err != nil {
		return err
	}
	for _, ix := range indexPlan {
		if err := db.CreateIndex(ix.table, ix.column, cfg.Indexes, ix.unique); err != nil {
			return err
		}
	}
	return db.Flush()
}

// Build generates and loads a complete database into a fresh engine
// instance sized by Config.BufferFrames.
func Build(cfg Config) (*engine.DB, error) {
	db := engine.Open(cfg.BufferFrames)
	if err := Load(db, cfg); err != nil {
		return nil, err
	}
	return db, nil
}

func load(db *engine.DB, cfg Config, rng *rand.Rand) error {
	sf := cfg.SF
	v := func(vals ...value.Value) []value.Value { return vals }
	pick := func(list []string) value.Value { return value.NewStr(list[rng.Intn(len(list))]) }
	date := func(loYear, hiYear int) value.Value {
		y := loYear + rng.Intn(hiYear-loYear+1)
		m := 1 + rng.Intn(12)
		d := 1 + rng.Intn(28)
		return value.NewDate(value.MakeDate(y, m, d))
	}

	// region, nation: fixed.
	for i, r := range regions {
		if err := db.Insert("region", v(value.NewInt(int64(i)), value.NewStr(r))); err != nil {
			return err
		}
	}
	for i, n := range nations {
		if err := db.Insert("nation", v(value.NewInt(int64(i)),
			value.NewStr(n.name), value.NewInt(int64(n.region)))); err != nil {
			return err
		}
	}

	nSupp := Cardinality("supplier", sf)
	for i := 1; i <= nSupp; i++ {
		if err := db.Insert("supplier", v(
			value.NewInt(int64(i)),
			value.NewStr(fmt.Sprintf("Supplier#%09d", i)),
			value.NewInt(int64(rng.Intn(len(nations)))),
			value.NewFloat(float64(rng.Intn(999999))/100-1000),
		)); err != nil {
			return err
		}
	}

	nCust := Cardinality("customer", sf)
	for i := 1; i <= nCust; i++ {
		if err := db.Insert("customer", v(
			value.NewInt(int64(i)),
			value.NewStr(fmt.Sprintf("Customer#%09d", i)),
			value.NewInt(int64(rng.Intn(len(nations)))),
			pick(segments),
			value.NewFloat(float64(rng.Intn(999999))/100-1000),
		)); err != nil {
			return err
		}
	}

	nPart := Cardinality("part", sf)
	for i := 1; i <= nPart; i++ {
		ptype := types1[rng.Intn(len(types1))] + " " +
			types2[rng.Intn(len(types2))] + " " + types3[rng.Intn(len(types3))]
		pname := colors[rng.Intn(len(colors))] + " " + colors[rng.Intn(len(colors))] + " " +
			colors[rng.Intn(len(colors))]
		if err := db.Insert("part", v(
			value.NewInt(int64(i)),
			value.NewStr(pname),
			value.NewStr(ptype),
			value.NewInt(int64(1+rng.Intn(50))),
			pick(containers),
			value.NewFloat(900+float64(i%1000)/10),
			value.NewStr(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
		)); err != nil {
			return err
		}
	}

	// partsupp: 4 suppliers per part (spec structure).
	if nSupp > 0 {
		for p := 1; p <= nPart; p++ {
			for j := 0; j < 4; j++ {
				s := 1 + (p+j*(nSupp/4+1))%nSupp
				if err := db.Insert("partsupp", v(
					value.NewInt(int64(p)),
					value.NewInt(int64(s)),
					value.NewInt(int64(1+rng.Intn(9999))),
					value.NewFloat(1+float64(rng.Intn(99999))/100),
				)); err != nil {
					return err
				}
			}
		}
	}

	// orders and lineitem: 1–7 lineitems per order, dates 1992–1998
	// with l_shipdate = o_orderdate + 1..121 days.
	nOrd := Cardinality("orders", sf)
	orderkey := int64(0)
	for i := 1; i <= nOrd; i++ {
		orderkey += 1 + int64(rng.Intn(3)) // sparse keys, as in dbgen
		cust := int64(1 + rng.Intn(nCust))
		od := date(1992, 1998)
		nl := 1 + rng.Intn(7)
		var total float64
		for ln := 1; ln <= nl; ln++ {
			qty := float64(1 + rng.Intn(50))
			price := qty * (900 + float64(rng.Intn(10000))/10)
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			ship := od.I + int64(1+rng.Intn(121))
			if err := db.Insert("lineitem", v(
				value.NewInt(orderkey),
				value.NewInt(int64(1+rng.Intn(maxInt(nPart, 1)))),
				value.NewInt(int64(1+rng.Intn(maxInt(nSupp, 1)))),
				value.NewInt(int64(ln)),
				value.NewFloat(qty),
				value.NewFloat(price),
				value.NewFloat(disc),
				value.NewFloat(tax),
				pick(returnflags),
				pick(linestatus),
				value.NewDate(ship),
				value.NewDate(ship+int64(rng.Intn(30))),
				value.NewDate(ship+int64(1+rng.Intn(30))),
				pick(shipmodes),
				pick([]string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}),
			)); err != nil {
				return err
			}
			total += price * (1 - disc) * (1 + tax)
		}
		if err := db.Insert("orders", v(
			value.NewInt(orderkey),
			value.NewInt(cust),
			pick([]string{"O", "F", "P"}),
			value.NewFloat(total),
			od,
			pick(priorities),
			value.NewInt(0),
		)); err != nil {
			return err
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
