package core

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/program"
)

// figure3 reconstructs the paper's Figure 3 weighted graph (node
// weights and branch probabilities scaled by 10 to integer counts):
//
//	A1(100) -1.0-> A2(100) -0.9-> A3(100) -0.55-> A4(60) -0.6-> A7(76) -1.0-> A8(100)
//	A2 -0.1-> B1(10)            A3 -0.45-> A5(45)  A4 -0.4-> A6(24)
//	A8 -> {A6: .35, B1: .35, C5: .30}   A5 -1.0-> A7   A6 -1.0-> A7
//
// With ExecThresh 40 (paper: 4) and BranchThresh 0.4 the builder must
// produce main trace A1,A2,A3,A4,A7,A8 and secondary trace {A5}; B1
// and C5 are discarded by the branch threshold and A6 by the exec
// threshold.
func figure3(t *testing.T) (*program.Program, *profile.Profile) {
	t.Helper()
	b := program.NewBuilder()
	f := b.Proc("A", "fig3")
	f.Fall("A1", 4)
	f.Cond("A2", 4, "B1")
	f.Cond("A3", 4, "A5")
	f.Cond("A4", 4, "A6")
	f.Cond("A5", 4, "A7")
	f.Fall("A6", 4)
	f.Fall("A7", 4)
	f.Cond("A8", 4, "C5")
	f.Fall("B1", 8)
	f.Ret("C5", 8)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := profile.New(p)
	w := map[string]uint64{
		"A1": 100, "A2": 100, "A3": 100, "A4": 60, "A5": 45,
		"A6": 24, "A7": 76, "A8": 100, "B1": 10, "C5": 30,
	}
	for name, c := range w {
		pr.BlockCount[p.MustBlock("A."+name)] = c
		pr.DynBlocks += c
	}
	e := func(from, to string, c uint64) {
		pr.EdgeCount[profile.Edge{
			From: p.MustBlock("A." + from),
			To:   p.MustBlock("A." + to),
		}] = c
	}
	e("A1", "A2", 100)
	e("A2", "A3", 90)
	e("A2", "B1", 10)
	e("A3", "A4", 55)
	e("A3", "A5", 45)
	e("A4", "A7", 36)
	e("A4", "A6", 24)
	e("A5", "A7", 45)
	e("A6", "A7", 24)
	e("A7", "A8", 76)
	e("A8", "A6", 35)
	e("A8", "B1", 35)
	e("A8", "C5", 30)
	return p, pr
}

func fig3Params() Params {
	return Params{ExecThreshold: 40, BranchThreshold: 0.4, CacheBytes: 1024, CFABytes: 256}
}

func names(p *program.Program, ids []program.BlockID) []string {
	out := make([]string, len(ids))
	for i, b := range ids {
		out[i] = p.Block(b).Name
	}
	return out
}

func equalNames(got []string, want ...string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestPaperFigure3 checks the worked example of Section 5.2 verbatim.
func TestPaperFigure3(t *testing.T) {
	p, pr := figure3(t)
	visited := make([]bool, p.NumBlocks())
	seqs := BuildSequences(pr, []program.BlockID{p.MustBlock("A.A1")}, fig3Params(), visited)
	if len(seqs) != 2 {
		t.Fatalf("got %d sequences, want 2 (main + secondary)", len(seqs))
	}
	if !equalNames(names(p, seqs[0].Blocks), "A.A1", "A.A2", "A.A3", "A.A4", "A.A7", "A.A8") {
		t.Fatalf("main trace = %v", names(p, seqs[0].Blocks))
	}
	if seqs[0].Secondary {
		t.Fatal("first trace must be the main trace")
	}
	if !equalNames(names(p, seqs[1].Blocks), "A.A5") {
		t.Fatalf("secondary trace = %v, want [A.A5]", names(p, seqs[1].Blocks))
	}
	if !seqs[1].Secondary {
		t.Fatal("A5 trace must be marked secondary")
	}
	// B1 (branch threshold), C5 (branch threshold) and A6 (exec
	// threshold) must remain outside all sequences.
	for _, n := range []string{"A.B1", "A.C5", "A.A6"} {
		if visited[p.MustBlock(n)] {
			t.Errorf("%s must not be part of any sequence", n)
		}
	}
}

func TestBuildAllSequencesCoversEveryExecutedBlock(t *testing.T) {
	p, pr := figure3(t)
	seqs, firstPass := BuildAllSequences(pr, []program.BlockID{p.MustBlock("A.A1")}, fig3Params())
	if firstPass != 2 {
		t.Fatalf("firstPass = %d, want 2", firstPass)
	}
	in := make(map[program.BlockID]int)
	for _, s := range seqs {
		for _, b := range s.Blocks {
			in[b]++
		}
	}
	for _, b := range pr.ExecutedBlocks() {
		if in[b] != 1 {
			t.Errorf("executed block %s appears %d times in sequences, want 1",
				p.Block(b).Name, in[b])
		}
	}
}

func TestAutoSeedsOrder(t *testing.T) {
	b := program.NewBuilder()
	for _, n := range []string{"f", "g", "h"} {
		b.Proc(n, "m").Ret("entry", 4)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := profile.New(p)
	pr.BlockCount[p.EntryOf("f")] = 5
	pr.BlockCount[p.EntryOf("g")] = 50
	// h never executed.
	seeds := AutoSeeds(pr)
	if len(seeds) != 2 {
		t.Fatalf("got %d seeds, want 2 (cold procs excluded)", len(seeds))
	}
	if seeds[0] != p.EntryOf("g") || seeds[1] != p.EntryOf("f") {
		t.Fatal("seeds must be sorted by decreasing popularity")
	}
}

func TestOpsSeedsFiltersAndSorts(t *testing.T) {
	b := program.NewBuilder()
	for _, n := range []string{"ExecSeqScan", "ExecHashJoin", "ExecSort", "helper"} {
		b.Proc(n, "executor").Ret("entry", 4)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := profile.New(p)
	pr.BlockCount[p.EntryOf("ExecSeqScan")] = 10
	pr.BlockCount[p.EntryOf("ExecHashJoin")] = 30
	pr.BlockCount[p.EntryOf("helper")] = 99 // not an op: must not appear
	seeds := OpsSeeds(pr, []string{"ExecSeqScan", "ExecHashJoin", "ExecSort", "NoSuchOp"})
	if len(seeds) != 2 {
		t.Fatalf("got %d seeds, want 2", len(seeds))
	}
	if seeds[0] != p.EntryOf("ExecHashJoin") || seeds[1] != p.EntryOf("ExecSeqScan") {
		t.Fatalf("ops seeds wrong order")
	}
}

// mapProgram builds one proc with uniformly sized blocks for mapping
// tests: each block is 16 bytes (4 instructions).
func mapProgram(t *testing.T, n int) *program.Program {
	t.Helper()
	b := program.NewBuilder()
	f := b.Proc("f", "m")
	for i := 0; i < n-1; i++ {
		f.Fall("", 4)
	}
	f.Ret("", 4)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func seqOf(ids ...program.BlockID) Sequence { return Sequence{Blocks: ids} }

func TestMapSequencesCFAAndChunks(t *testing.T) {
	// 12 blocks of 16 bytes. Cache 64 bytes, CFA 32 bytes.
	p := mapProgram(t, 12)
	params := Params{CacheBytes: 64, CFABytes: 32}
	// First pass: seq0 (2 blocks = 32B: fills CFA exactly),
	// seq1 (1 block: does not fit CFA anymore -> non-CFA area).
	// Later: seq2 (2 blocks = 32B: fills chunk0 non-CFA after... seq1
	// took 16B of chunk0's 32B non-CFA, so seq2 moves to chunk1),
	// seq3 (1 block: fits chunk1 remainder).
	seqs := []Sequence{
		seqOf(0, 1),
		seqOf(2),
		seqOf(3, 4),
		seqOf(5),
	}
	l := MapSequences(p, seqs, 2, params)
	if err := l.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := map[program.BlockID]uint64{
		0: 0,  // CFA
		1: 16, // CFA
		2: 32, // chunk0 non-CFA
		3: 96, // chunk1 non-CFA start (64+32)
		4: 112,
		5: 48, // chunk0 non-CFA remainder? no: placed after seq2...
	}
	// Correction: sequences are placed in order; seq3 comes after seq2,
	// whose end is 128 = chunk2 boundary, so cursor moves to chunk2's
	// non-CFA start: 128+32 = 160.
	want[5] = 160
	for b, a := range want {
		if l.AddrOf(b) != a {
			t.Errorf("block %d at %d, want %d", b, l.AddrOf(b), a)
		}
	}
	// Cold blocks 6..11 fill after the next chunk boundary (192...).
	if l.AddrOf(6) != 192 {
		t.Errorf("first cold block at %d, want 192", l.AddrOf(6))
	}
	for i := program.BlockID(7); i < 12; i++ {
		if l.AddrOf(i) != l.AddrOf(i-1)+16 {
			t.Errorf("cold blocks must be consecutive at %d", i)
		}
	}
}

func TestMapSequencesSpanningSequenceSplits(t *testing.T) {
	// A sequence larger than the non-CFA area splits at the chunk
	// boundary: the CFA offsets of every logical cache stay free.
	p := mapProgram(t, 8)
	params := Params{CacheBytes: 64, CFABytes: 32}
	seqs := []Sequence{
		seqOf(0, 1, 2), // 48B > 32B non-CFA: splits into chunk 1
		seqOf(3),
	}
	l := MapSequences(p, seqs, 0, params) // no CFA sequences
	if err := l.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := map[program.BlockID]uint64{
		0: 32,  // chunk 0 non-CFA
		1: 48,  // still fits chunk 0
		2: 96,  // split: chunk 1 non-CFA start
		3: 112, // next sequence continues in chunk 1
	}
	for b, a := range want {
		if l.AddrOf(b) != a {
			t.Errorf("block %d at %d, want %d", b, l.AddrOf(b), a)
		}
	}
	// No sequence block may occupy a CFA offset of any chunk.
	for b := program.BlockID(0); b < 4; b++ {
		if off := l.AddrOf(b) % 64; off < 32 {
			t.Errorf("block %d at CFA offset %d", b, off)
		}
	}
}

func TestMapSequencesEmptyProfileAllCold(t *testing.T) {
	p := mapProgram(t, 4)
	params := Params{CacheBytes: 64, CFABytes: 32}
	l := MapSequences(p, nil, 0, params)
	if err := l.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if l.AddrOf(0) != 0 {
		t.Fatalf("cold code must start at 0 when no sequences exist, got %d", l.AddrOf(0))
	}
}

func TestBuildProducesValidLayoutWithAllBlocks(t *testing.T) {
	p, pr := figure3(t)
	params := fig3Params()
	l := Build("stc-auto", pr, AutoSeeds(pr), params)
	if err := l.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if l.Name != "stc-auto" {
		t.Fatalf("name = %q", l.Name)
	}
	// The main trace must be contiguous in the layout.
	blocks := []string{"A.A1", "A.A2", "A.A3", "A.A4", "A.A7", "A.A8"}
	for i := 1; i < len(blocks); i++ {
		prev := p.MustBlock(blocks[i-1])
		cur := p.MustBlock(blocks[i])
		if l.AddrOf(cur) != l.AddrOf(prev)+p.Block(prev).SizeBytes() {
			t.Errorf("%s must immediately follow %s", blocks[i], blocks[i-1])
		}
	}
}

func TestSequenceSizeBytes(t *testing.T) {
	p := mapProgram(t, 3)
	s := seqOf(0, 1)
	if got := s.SizeBytes(p); got != 32 {
		t.Fatalf("SizeBytes = %d, want 32", got)
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.CFABytes >= p.CacheBytes || p.CFABytes <= 0 {
		t.Fatal("default CFA must be a proper fraction of the cache")
	}
	if p.BranchThreshold <= 0 || p.BranchThreshold >= 1 {
		t.Fatal("default branch threshold out of range")
	}
}
