// Package core implements the paper's primary contribution: the
// Software Trace Cache (STC) basic-block reordering algorithm of
// Section 5. It has three parts:
//
//  1. Seed selection (Section 5.1): either the entry points of all
//     functions in decreasing popularity order (auto), or the entry
//     points of the Executor operations (ops).
//  2. Sequence building (Section 5.2): a greedy walk of the weighted
//     CFG from each seed, following the most frequently executed path,
//     bounded by an Exec Threshold (minimum basic-block weight) and a
//     Branch Threshold (minimum transition probability). Rejected but
//     valid transitions seed secondary traces.
//  3. Sequence mapping (Section 5.3): sequences are placed in a
//     logical array of cache-sized chunks; the first sequences fill a
//     Conflict Free Area (CFA) that later code never overlaps, the
//     rest fill the remaining area chunk by chunk, and all leftover
//     (cold) code is appended afterwards.
package core

import (
	"sort"

	"repro/internal/profile"
	"repro/internal/program"
)

// Params configures sequence building and mapping.
type Params struct {
	// ExecThreshold is the minimum dynamic execution count for a block
	// to be included in a sequence.
	ExecThreshold uint64
	// BranchThreshold is the minimum transition probability for an
	// outgoing arc to be followed or noted.
	BranchThreshold float64
	// CacheBytes is the target instruction-cache size (one logical
	// cache chunk).
	CacheBytes int
	// CFABytes is the size of the Conflict Free Area reserved at the
	// start of every logical cache chunk.
	CFABytes int
}

// DefaultParams returns the thresholds used for the paper-scale
// experiments with a 32KB cache and 8KB CFA.
func DefaultParams() Params {
	return Params{
		ExecThreshold:   16,
		BranchThreshold: 0.4,
		CacheBytes:      32 * 1024,
		CFABytes:        8 * 1024,
	}
}

// Sequence is one basic-block trace produced by the greedy builder.
type Sequence struct {
	Blocks []program.BlockID
	// Secondary is true for traces grown from noted transitions rather
	// than directly from a seed.
	Secondary bool
	// Seed is the seed block this sequence descends from.
	Seed program.BlockID
}

// SizeBytes returns the total code size of the sequence.
func (s *Sequence) SizeBytes(p *program.Program) uint64 {
	var n uint64
	for _, b := range s.Blocks {
		n += p.Block(b).SizeBytes()
	}
	return n
}

// AutoSeeds returns the entry points of all executed procedures in
// decreasing order of popularity (entry-block execution count), the
// paper's "auto" seed selection.
func AutoSeeds(pr *profile.Profile) []program.BlockID {
	type cand struct {
		entry program.BlockID
		w     uint64
	}
	var cands []cand
	for i := range pr.Prog.Procs {
		e := pr.Prog.Procs[i].Entry
		if w := pr.Weight(e); w > 0 {
			cands = append(cands, cand{e, w})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].entry < cands[j].entry
	})
	out := make([]program.BlockID, len(cands))
	for i, c := range cands {
		out[i] = c.entry
	}
	return out
}

// OpsSeeds returns the entry points of the named procedures (the
// Executor operations), in decreasing popularity order — the paper's
// knowledge-based "ops" seed selection. Unknown or never-executed
// procedures are skipped.
func OpsSeeds(pr *profile.Profile, procNames []string) []program.BlockID {
	type cand struct {
		entry program.BlockID
		w     uint64
	}
	var cands []cand
	for _, name := range procNames {
		proc, ok := pr.Prog.ProcByName(name)
		if !ok {
			continue
		}
		if w := pr.Weight(proc.Entry); w > 0 {
			cands = append(cands, cand{proc.Entry, w})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].entry < cands[j].entry
	})
	out := make([]program.BlockID, len(cands))
	for i, c := range cands {
		out[i] = c.entry
	}
	return out
}

// BuildSequences runs one pass of the greedy trace builder (Section
// 5.2) from the given seeds. visited is updated in place; pass a fresh
// slice of len NumBlocks for a standalone run. Sequences are returned
// in construction order: for each seed, its main trace followed by its
// secondary traces.
func BuildSequences(pr *profile.Profile, seeds []program.BlockID, p Params, visited []bool) []Sequence {
	var seqs []Sequence
	for _, seed := range seeds {
		// Pending transitions noted for future examination (FIFO).
		pending := []program.BlockID{seed}
		first := true
		for len(pending) > 0 {
			start := pending[0]
			pending = pending[1:]
			if visited[start] || pr.Weight(start) < p.ExecThreshold {
				first = false
				continue
			}
			seq := Sequence{Seed: seed, Secondary: !first}
			first = false
			b := start
			for b != program.NoBlock && !visited[b] && pr.Weight(b) >= p.ExecThreshold {
				visited[b] = true
				seq.Blocks = append(seq.Blocks, b)
				// Follow the most frequently executed acceptable path;
				// note the other acceptable transitions.
				succs := pr.Succs(b)
				var total uint64
				for _, s := range succs {
					total += s.Count
				}
				next := program.NoBlock
				for _, s := range succs {
					if total == 0 {
						break
					}
					prob := float64(s.Count) / float64(total)
					if prob < p.BranchThreshold {
						break // sorted by count: the rest are lower
					}
					if visited[s.To] {
						continue
					}
					if next == program.NoBlock {
						next = s.To
					} else {
						pending = append(pending, s.To)
					}
				}
				b = next
			}
			if len(seq.Blocks) > 0 {
				seqs = append(seqs, seq)
			}
		}
	}
	return seqs
}

// BuildAllSequences runs the builder in passes of decreasing
// thresholds until every executed block belongs to a sequence: pass 1
// with the given params (these sequences are the CFA candidates),
// later passes with relaxed thresholds over all executed procedure
// entries, and a final sweep seeding any still-unplaced executed
// blocks directly. The returned pass-1 count tells the mapper how many
// leading sequences came from the first pass.
func BuildAllSequences(pr *profile.Profile, seeds []program.BlockID, p Params) (seqs []Sequence, firstPass int) {
	visited := make([]bool, pr.Prog.NumBlocks())
	seqs = BuildSequences(pr, seeds, p, visited)
	firstPass = len(seqs)

	// Relaxation passes over all executed entries.
	relaxed := p
	auto := AutoSeeds(pr)
	for _, sc := range []struct {
		exec   uint64
		branch float64
	}{
		{p.ExecThreshold / 4, p.BranchThreshold / 2},
		{1, 0.05},
		{1, 0},
	} {
		relaxed.ExecThreshold = max64(sc.exec, 1)
		relaxed.BranchThreshold = sc.branch
		seqs = append(seqs, BuildSequences(pr, auto, relaxed, visited)...)
	}
	// Final sweep: any executed block not yet placed becomes a seed
	// itself (e.g. blocks only reachable through transitions that
	// tracing never observed from an entry).
	remaining := p
	remaining.ExecThreshold = 1
	remaining.BranchThreshold = 0
	rest := pr.ExecutedBlocks()
	var restSeeds []program.BlockID
	for _, b := range rest {
		if !visited[b] {
			restSeeds = append(restSeeds, b)
		}
	}
	seqs = append(seqs, BuildSequences(pr, restSeeds, remaining, visited)...)
	return seqs, firstPass
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// MapSequences implements the Section 5.3 mapping. The first-pass
// sequences fill the Conflict Free Area — offsets [0, CFABytes) of the
// logical cache array — until one no longer fits. All other sequences
// fill the non-CFA area of successive logical caches: offsets
// [CFABytes, CacheBytes) of chunk 0, then of chunk 1, and so on, so
// they can never evict the CFA. Remaining blocks (cold code and any
// unsequenced block) are appended after the last chunk, filling the
// entire address space without geometry constraints.
func MapSequences(prog *program.Program, seqs []Sequence, firstPass int, p Params) *program.Layout {
	addr := make([]uint64, prog.NumBlocks())
	placed := make([]bool, prog.NumBlocks())
	cacheB := uint64(p.CacheBytes)
	cfaB := uint64(p.CFABytes)

	place := func(seq *Sequence, at uint64) uint64 {
		for _, b := range seq.Blocks {
			addr[b] = at
			placed[b] = true
			at += prog.Block(b).SizeBytes()
		}
		return at
	}

	var maxUsed uint64 // highest byte address occupied by any sequence

	// 1. CFA: first-pass sequences from offset 0. Sequences that do not
	// fit the remaining CFA space are left for the non-CFA area (with
	// knowledge-based seeds the very first sequence can exceed the
	// whole CFA; skipping it must not starve the area).
	var cfaCursor uint64
	skipped := make([]int, 0, len(seqs))
	for i := 0; i < firstPass; i++ {
		sz := seqs[i].SizeBytes(prog)
		if cfaCursor+sz > cfaB {
			skipped = append(skipped, i)
			continue
		}
		cfaCursor = place(&seqs[i], cfaCursor)
	}
	maxUsed = cfaCursor

	// 2. Everything else into the non-CFA area, chunk by chunk. The CFA
	// offsets of every logical cache stay free of code (the paper's
	// Figure 4); sequences longer than the remaining region are split
	// at the chunk boundary, trading one discontinuity for keeping the
	// CFA conflict-free.
	chunk := uint64(0)
	cursor := cfaB // offset within the current chunk
	placeSplit := func(seq *Sequence) {
		for _, blk := range seq.Blocks {
			sz := prog.Block(blk).SizeBytes()
			if cursor+sz > cacheB {
				chunk++
				cursor = cfaB
			}
			addr[blk] = chunk*cacheB + cursor
			placed[blk] = true
			cursor += sz
			if a := chunk*cacheB + cursor; a > maxUsed {
				maxUsed = a
			}
		}
	}
	rest := make([]int, 0, len(seqs))
	rest = append(rest, skipped...)
	for i := firstPass; i < len(seqs); i++ {
		rest = append(rest, i)
	}
	for _, i := range rest {
		sz := seqs[i].SizeBytes(prog)
		if cursor+sz > cacheB && cursor > cfaB && sz <= cacheB-cfaB {
			// Fits in a fresh chunk without splitting: move on.
			chunk++
			cursor = cfaB
		}
		placeSplit(&seqs[i])
	}

	// 3. Cold and unsequenced code after the next chunk boundary,
	// filling the entire address space.
	var end uint64
	if maxUsed > 0 {
		end = (maxUsed + cacheB - 1) / cacheB * cacheB
	}
	for pi := range prog.Procs {
		for _, b := range prog.Procs[pi].Blocks {
			if !placed[b] {
				addr[b] = end
				placed[b] = true
				end += prog.Block(b).SizeBytes()
			}
		}
	}
	return program.NewLayoutFromAddrs("stc", prog, addr)
}

// Build computes the full STC layout for a profile: sequences from the
// given seeds, mapped with the given parameters.
func Build(name string, pr *profile.Profile, seeds []program.BlockID, p Params) *program.Layout {
	seqs, firstPass := BuildAllSequences(pr, seeds, p)
	l := MapSequences(pr.Prog, seqs, firstPass, p)
	l.Name = name
	return l
}

// FitExecThreshold finds the smallest ExecThreshold whose first-pass
// sequences fit the CFA. This operationalizes Section 5.3: "The size
// of this CFA is determined by the Exec and Branch Thresholds used for
// the first pass" — the paper picks thresholds to realize a target CFA
// size; we invert that relation by binary search (the pass-1 footprint
// shrinks monotonically as the threshold grows).
func FitExecThreshold(pr *profile.Profile, seeds []program.BlockID, p Params) uint64 {
	passSize := func(th uint64) uint64 {
		q := p
		q.ExecThreshold = th
		visited := make([]bool, pr.Prog.NumBlocks())
		seqs := BuildSequences(pr, seeds, q, visited)
		var total uint64
		for i := range seqs {
			total += seqs[i].SizeBytes(pr.Prog)
		}
		return total
	}
	var hi uint64 = 1
	for _, w := range pr.BlockCount {
		if w > hi {
			hi = w
		}
	}
	lo := uint64(1)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if passSize(mid) <= uint64(p.CFABytes) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// BuildFitted is Build with the first-pass ExecThreshold fitted to the
// CFA size, the way the paper parameterizes its experiments.
func BuildFitted(name string, pr *profile.Profile, seeds []program.BlockID, p Params) *program.Layout {
	p.ExecThreshold = FitExecThreshold(pr, seeds, p)
	return Build(name, pr, seeds, p)
}
