// Package cache implements the instruction-cache models used by the
// paper's evaluation (Section 7): direct-mapped caches of 8–64 KB,
// a 2-way set-associative variant, a direct-mapped cache backed by a
// 16-line fully-associative victim cache, and the 256-entry trace
// cache of Rotenberg et al. that the Software Trace Cache is combined
// with in Table 4.
//
// All instruction caches are simulated at line granularity: the fetch
// engine translates fetch requests into line accesses.
package cache

import "fmt"

// DefaultLineBytes is the cache line size used throughout the paper's
// setup: 16 instructions of 4 bytes.
const DefaultLineBytes = 64

// ICache is a line-granularity instruction cache model.
type ICache interface {
	// Access touches the line containing byte address addr and returns
	// true on a hit. State is updated (fills, LRU, victim movement).
	Access(addr uint64) bool
	// Reset invalidates all cache state.
	Reset()
	// LineBytes returns the line size in bytes.
	LineBytes() int
	// Name describes the configuration, e.g. "32KB direct".
	Name() string
}

// DirectMapped is a direct-mapped instruction cache.
type DirectMapped struct {
	name      string
	lineBytes uint64
	sets      uint64
	tags      []uint64
	valid     []bool
}

// NewDirectMapped returns a direct-mapped cache of the given total
// size. sizeBytes must be a multiple of lineBytes.
func NewDirectMapped(sizeBytes, lineBytes int) *DirectMapped {
	if sizeBytes <= 0 || lineBytes <= 0 || sizeBytes%lineBytes != 0 {
		panic(fmt.Sprintf("cache: bad geometry %d/%d", sizeBytes, lineBytes))
	}
	sets := uint64(sizeBytes / lineBytes)
	return &DirectMapped{
		name:      fmt.Sprintf("%dKB direct", sizeBytes/1024),
		lineBytes: uint64(lineBytes),
		sets:      sets,
		tags:      make([]uint64, sets),
		valid:     make([]bool, sets),
	}
}

// Access implements ICache.
func (c *DirectMapped) Access(addr uint64) bool {
	line := addr / c.lineBytes
	set := line % c.sets
	if c.valid[set] && c.tags[set] == line {
		return true
	}
	c.valid[set] = true
	c.tags[set] = line
	return false
}

// Probe reports whether the line containing addr is resident, without
// updating any state.
func (c *DirectMapped) Probe(addr uint64) bool {
	line := addr / c.lineBytes
	set := line % c.sets
	return c.valid[set] && c.tags[set] == line
}

// Evict invalidates the line containing addr if resident, returning
// the evicted line number and true.
func (c *DirectMapped) evictFor(line uint64) (uint64, bool) {
	set := line % c.sets
	if !c.valid[set] {
		return 0, false
	}
	old := c.tags[set]
	return old, true
}

// Reset implements ICache.
func (c *DirectMapped) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// LineBytes implements ICache.
func (c *DirectMapped) LineBytes() int { return int(c.lineBytes) }

// Name implements ICache.
func (c *DirectMapped) Name() string { return c.name }

// SetAssoc is a k-way set-associative cache with true LRU replacement.
type SetAssoc struct {
	name      string
	lineBytes uint64
	sets      uint64
	ways      int
	// tags[set*ways+way]; age[set*ways+way] is an LRU stamp.
	tags  []uint64
	valid []bool
	age   []uint64
	clock uint64
}

// NewSetAssoc returns a k-way set-associative cache.
func NewSetAssoc(sizeBytes, lineBytes, ways int) *SetAssoc {
	if ways <= 0 || sizeBytes <= 0 || lineBytes <= 0 ||
		sizeBytes%(lineBytes*ways) != 0 {
		panic(fmt.Sprintf("cache: bad geometry %d/%d/%d", sizeBytes, lineBytes, ways))
	}
	sets := uint64(sizeBytes / lineBytes / ways)
	n := int(sets) * ways
	return &SetAssoc{
		name:      fmt.Sprintf("%dKB %d-way", sizeBytes/1024, ways),
		lineBytes: uint64(lineBytes),
		sets:      sets,
		ways:      ways,
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		age:       make([]uint64, n),
	}
}

// Access implements ICache.
func (c *SetAssoc) Access(addr uint64) bool {
	line := addr / c.lineBytes
	set := line % c.sets
	base := int(set) * c.ways
	c.clock++
	victim, oldest := base, c.age[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.age[i] = c.clock
			return true
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.age[i] < oldest {
			victim, oldest = i, c.age[i]
		}
	}
	c.valid[victim] = true
	c.tags[victim] = line
	c.age[victim] = c.clock
	return false
}

// Reset implements ICache.
func (c *SetAssoc) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.age[i] = 0
	}
	c.clock = 0
}

// LineBytes implements ICache.
func (c *SetAssoc) LineBytes() int { return int(c.lineBytes) }

// Name implements ICache.
func (c *SetAssoc) Name() string { return c.name }

// Victim is a direct-mapped cache backed by a small fully-associative
// victim cache (Jouppi). Lines evicted from the main cache move to the
// victim buffer; a victim-buffer hit swaps the line back into the main
// cache and counts as a hit.
type Victim struct {
	name    string
	main    *DirectMapped
	entries int
	vtags   []uint64
	vvalid  []bool
	vage    []uint64
	clock   uint64
}

// NewVictim returns a direct-mapped cache of sizeBytes with an
// entries-line fully-associative victim buffer.
func NewVictim(sizeBytes, lineBytes, entries int) *Victim {
	return &Victim{
		name:    fmt.Sprintf("%dKB direct+%d-line victim", sizeBytes/1024, entries),
		main:    NewDirectMapped(sizeBytes, lineBytes),
		entries: entries,
		vtags:   make([]uint64, entries),
		vvalid:  make([]bool, entries),
		vage:    make([]uint64, entries),
	}
}

// Access implements ICache.
func (c *Victim) Access(addr uint64) bool {
	line := addr / c.main.lineBytes
	set := line % c.main.sets
	c.clock++
	if c.main.valid[set] && c.main.tags[set] == line {
		return true
	}
	// Main miss: probe the victim buffer.
	for i := 0; i < c.entries; i++ {
		if c.vvalid[i] && c.vtags[i] == line {
			// Swap: requested line moves to main, displaced main line
			// takes its victim slot.
			if c.main.valid[set] {
				c.vtags[i] = c.main.tags[set]
				c.vage[i] = c.clock
			} else {
				c.vvalid[i] = false
			}
			c.main.tags[set] = line
			c.main.valid[set] = true
			return true
		}
	}
	// Full miss: fill main, displaced line goes to the victim buffer.
	if old, ok := c.main.evictFor(line); ok {
		c.insertVictim(old)
	}
	c.main.tags[set] = line
	c.main.valid[set] = true
	return false
}

func (c *Victim) insertVictim(line uint64) {
	victim, oldest := 0, c.vage[0]
	for i := 0; i < c.entries; i++ {
		if !c.vvalid[i] {
			victim = i
			break
		}
		if c.vage[i] < oldest {
			victim, oldest = i, c.vage[i]
		}
	}
	c.vvalid[victim] = true
	c.vtags[victim] = line
	c.vage[victim] = c.clock
}

// Reset implements ICache.
func (c *Victim) Reset() {
	c.main.Reset()
	for i := range c.vvalid {
		c.vvalid[i] = false
		c.vage[i] = 0
	}
	c.clock = 0
}

// LineBytes implements ICache.
func (c *Victim) LineBytes() int { return c.main.LineBytes() }

// Name implements ICache.
func (c *Victim) Name() string { return c.name }

// Ideal is a cache that always hits (the paper's "Ideal" rows).
type Ideal struct{ lineBytes int }

// NewIdeal returns an always-hitting cache with the given line size.
func NewIdeal(lineBytes int) *Ideal { return &Ideal{lineBytes: lineBytes} }

// Access implements ICache.
func (c *Ideal) Access(uint64) bool { return true }

// Reset implements ICache.
func (c *Ideal) Reset() {}

// LineBytes implements ICache.
func (c *Ideal) LineBytes() int { return c.lineBytes }

// Name implements ICache.
func (c *Ideal) Name() string { return "ideal" }
