package cache

import (
	"testing"
	"testing/quick"
)

func TestDirectMappedBasic(t *testing.T) {
	c := NewDirectMapped(1024, 64) // 16 sets
	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0) {
		t.Fatal("second access must hit")
	}
	if !c.Access(63) {
		t.Fatal("same line must hit")
	}
	if c.Access(64) {
		t.Fatal("next line cold access must miss")
	}
	// 1024 bytes, 16 sets: address 0 and 1024 conflict.
	if c.Access(1024) {
		t.Fatal("conflicting line must miss")
	}
	if c.Access(0) {
		t.Fatal("evicted line must miss")
	}
	c.Reset()
	if c.Access(64) {
		t.Fatal("access after reset must miss")
	}
}

func TestDirectMappedProbeDoesNotFill(t *testing.T) {
	c := NewDirectMapped(1024, 64)
	if c.Probe(0) {
		t.Fatal("probe of cold cache must be false")
	}
	if c.Probe(0) || c.Access(0) {
		t.Fatal("probe must not fill")
	}
	if !c.Probe(0) {
		t.Fatal("probe after fill must be true")
	}
}

func TestDirectMappedBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDirectMapped(1000, 64)
}

func TestSetAssocLRU(t *testing.T) {
	c := NewSetAssoc(2048, 64, 2) // 16 sets, 2 ways
	// Three lines mapping to set 0: 0, 1024, 2048.
	c.Access(0)
	c.Access(1024)
	if !c.Access(0) || !c.Access(1024) {
		t.Fatal("both ways must be resident")
	}
	c.Access(0)    // 0 is now MRU, 1024 LRU
	c.Access(2048) // evicts 1024
	if !c.Access(0) {
		t.Fatal("MRU line evicted instead of LRU")
	}
	if c.Access(1024) {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestSetAssocNames(t *testing.T) {
	if got := NewSetAssoc(16384, 64, 2).Name(); got != "16KB 2-way" {
		t.Fatalf("name = %q", got)
	}
	if got := NewDirectMapped(32768, 64).Name(); got != "32KB direct" {
		t.Fatalf("name = %q", got)
	}
	if got := NewVictim(8192, 64, 16).Name(); got != "8KB direct+16-line victim" {
		t.Fatalf("name = %q", got)
	}
}

// Property: a 1-way set-associative cache behaves exactly like a
// direct-mapped cache of the same geometry.
func TestOneWayEqualsDirectMapped(t *testing.T) {
	f := func(addrs []uint16) bool {
		dm := NewDirectMapped(1024, 64)
		sa := NewSetAssoc(1024, 64, 1)
		for _, a := range addrs {
			if dm.Access(uint64(a)) != sa.Access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a k-way cache never has more misses than a direct-mapped
// cache of the same size on any address sequence confined to one set's
// conflict group... not true in general (LRU vs direct pathologies),
// so instead check the inclusion-style sanity property: repeating the
// same address twice in a row always hits the second time.
func TestImmediateRehitProperty(t *testing.T) {
	caches := []ICache{
		NewDirectMapped(1024, 64),
		NewSetAssoc(2048, 64, 2),
		NewVictim(1024, 64, 4),
	}
	f := func(addrs []uint32) bool {
		for _, c := range caches {
			c.Reset()
			for _, a := range addrs {
				c.Access(uint64(a))
				if !c.Access(uint64(a)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVictimCatchesConflicts(t *testing.T) {
	c := NewVictim(1024, 64, 4)
	// 0 and 1024 conflict in the main cache.
	c.Access(0)
	c.Access(1024) // miss; 0 moves to victim buffer
	if !c.Access(0) {
		t.Fatal("victim buffer should hold line 0")
	}
	// The swap puts 1024 in the victim buffer now.
	if !c.Access(1024) {
		t.Fatal("victim buffer should hold line 1024 after swap")
	}
}

func TestVictimLRUReplacement(t *testing.T) {
	c := NewVictim(64, 64, 2) // main: 1 set; victim: 2 lines
	c.Access(0)               // main: 0
	c.Access(64)              // main: 64, victim: [0]
	c.Access(128)             // main: 128, victim: [0, 64]
	c.Access(192)             // main: 192, victim: [64, 128] (0 was LRU)
	if c.Access(0) {
		t.Fatal("line 0 should have aged out of the 2-entry victim buffer")
	}
	if !c.Access(128) {
		t.Fatal("line 128 should still be in the victim buffer")
	}
}

func TestIdealAlwaysHits(t *testing.T) {
	c := NewIdeal(64)
	for a := uint64(0); a < 1<<16; a += 4096 {
		if !c.Access(a) {
			t.Fatal("ideal cache missed")
		}
	}
	if c.LineBytes() != 64 || c.Name() != "ideal" {
		t.Fatal("ideal metadata wrong")
	}
}

func TestTraceCacheFillLookup(t *testing.T) {
	tc := NewTraceCache(256, 16, 3, 4)
	seq := []uint64{100, 104, 108, 200, 204}
	tc.Fill(100, seq)
	peekFrom := func(s []uint64) func(int) (uint64, bool) {
		return func(i int) (uint64, bool) {
			if i < len(s) {
				return s[i], true
			}
			return 0, false
		}
	}
	n, hit := tc.Lookup(100, peekFrom(seq))
	if !hit || n != 5 {
		t.Fatalf("lookup = (%d,%v), want (5,true)", n, hit)
	}
	// Divergent path after the 3rd instruction: miss.
	div := []uint64{100, 104, 108, 300, 304}
	if _, hit := tc.Lookup(100, peekFrom(div)); hit {
		t.Fatal("divergent path must miss")
	}
	// Too-short upcoming stream: miss.
	if _, hit := tc.Lookup(100, peekFrom(seq[:3])); hit {
		t.Fatal("short stream must miss")
	}
	// Wrong fetch address: miss.
	if _, hit := tc.Lookup(104, peekFrom(seq)); hit {
		t.Fatal("wrong tag must miss")
	}
	hits, misses, fills := tc.Stats()
	if hits != 1 || misses != 3 || fills != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/3/1", hits, misses, fills)
	}
}

func TestTraceCacheConflict(t *testing.T) {
	tc := NewTraceCache(256, 16, 3, 4)
	// Addresses 4*i and 4*(i+256) index the same entry.
	a, b := uint64(0), uint64(256*4)
	tc.Fill(a, []uint64{a})
	tc.Fill(b, []uint64{b})
	peek := func(want uint64) func(int) (uint64, bool) {
		return func(i int) (uint64, bool) { return want, i == 0 }
	}
	if _, hit := tc.Lookup(a, peek(a)); hit {
		t.Fatal("conflicting fill should have evicted entry a")
	}
	if _, hit := tc.Lookup(b, peek(b)); !hit {
		t.Fatal("entry b should be resident")
	}
}

func TestTraceCacheResetAndEmptyFill(t *testing.T) {
	tc := NewTraceCache(16, 16, 3, 4)
	tc.Fill(0, nil) // ignored
	if _, _, fills := tc.Stats(); fills != 0 {
		t.Fatal("empty fill must be ignored")
	}
	tc.Fill(0, []uint64{0})
	tc.Reset()
	if _, hit := tc.Lookup(0, func(int) (uint64, bool) { return 0, true }); hit {
		t.Fatal("lookup after reset must miss")
	}
	if tc.Name() != "16KB trace cache" {
		// 256*16*4 = 16KB only for the 256-entry config; here 16 entries = 1KB.
		tcBig := NewTraceCache(256, 16, 3, 4)
		if tcBig.Name() != "16KB trace cache" {
			t.Fatalf("name = %q", tcBig.Name())
		}
	}
}
