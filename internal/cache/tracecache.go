package cache

import "fmt"

// TraceCache models the basic trace cache of Rotenberg, Bennett and
// Smith used in Section 7.3: a direct-mapped buffer of dynamic
// instruction sequences, each up to MaxInstrs instructions and
// MaxBranches branches long, indexed by fetch address.
//
// The simulator stores each trace as the exact sequence of instruction
// addresses it contains. With the paper's perfect branch prediction, a
// lookup hits when the stored sequence matches the actual upcoming
// dynamic instruction stream, i.e. the stored branch outcomes agree
// with the (perfectly predicted) future path.
type TraceCache struct {
	entries    int
	maxInstrs  int
	maxBranch  int
	lines      []tcLine
	sizeBytes  int
	hitCount   uint64
	missCount  uint64
	fillCount  uint64
	instrBytes uint64
}

type tcLine struct {
	valid bool
	tag   uint64 // fetch address
	addrs []uint64
}

// NewTraceCache returns a direct-mapped trace cache with the given
// number of entries, each holding up to maxInstrs instructions and
// maxBranches branches. The paper's configuration is 256 entries of 16
// instructions (16 KB).
func NewTraceCache(entries, maxInstrs, maxBranches, instrBytes int) *TraceCache {
	tc := &TraceCache{
		entries:    entries,
		maxInstrs:  maxInstrs,
		maxBranch:  maxBranches,
		lines:      make([]tcLine, entries),
		sizeBytes:  entries * maxInstrs * instrBytes,
		instrBytes: uint64(instrBytes),
	}
	return tc
}

// Name describes the configuration.
func (tc *TraceCache) Name() string { return fmt.Sprintf("%dKB trace cache", tc.sizeBytes/1024) }

// Entries returns the number of trace lines.
func (tc *TraceCache) Entries() int { return tc.entries }

// MaxInstrs returns the per-line instruction capacity.
func (tc *TraceCache) MaxInstrs() int { return tc.maxInstrs }

// MaxBranches returns the per-line branch limit.
func (tc *TraceCache) MaxBranches() int { return tc.maxBranch }

func (tc *TraceCache) index(addr uint64) int {
	return int((addr / tc.instrBytes) % uint64(tc.entries))
}

// Lookup checks for a trace starting at fetch address addr whose
// stored instruction addresses match the upcoming stream. upcoming
// must supply at least the next len instructions' addresses via the
// peek callback: peek(i) returns the address of the i-th upcoming
// instruction (i=0 is the instruction at addr) and whether it exists.
// On a hit it returns the number of instructions delivered.
func (tc *TraceCache) Lookup(addr uint64, peek func(int) (uint64, bool)) (int, bool) {
	l := &tc.lines[tc.index(addr)]
	if !l.valid || l.tag != addr {
		tc.missCount++
		return 0, false
	}
	for i, want := range l.addrs {
		got, ok := peek(i)
		if !ok || got != want {
			// Stored branch outcomes diverge from the actual path.
			tc.missCount++
			return 0, false
		}
	}
	tc.hitCount++
	return len(l.addrs), true
}

// Fill inserts a trace starting at addr with the given instruction
// addresses (already truncated to the line limits by the fill unit).
func (tc *TraceCache) Fill(addr uint64, addrs []uint64) {
	if len(addrs) == 0 {
		return
	}
	l := &tc.lines[tc.index(addr)]
	l.valid = true
	l.tag = addr
	l.addrs = append(l.addrs[:0], addrs...)
	tc.fillCount++
}

// Stats returns hit, miss and fill counts.
func (tc *TraceCache) Stats() (hits, misses, fills uint64) {
	return tc.hitCount, tc.missCount, tc.fillCount
}

// Reset invalidates all lines and clears statistics.
func (tc *TraceCache) Reset() {
	for i := range tc.lines {
		tc.lines[i].valid = false
		tc.lines[i].addrs = tc.lines[i].addrs[:0]
	}
	tc.hitCount, tc.missCount, tc.fillCount = 0, 0, 0
}
