package fetch

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/program"
	"repro/internal/trace"
)

// straightProgram is a single procedure with one 40-instruction block
// ending in a return.
func straightProgram(t *testing.T) (*program.Program, *trace.Trace) {
	t.Helper()
	b := program.NewBuilder()
	b.Proc("f", "m").Ret("entry", 40)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(p)
	r := trace.NewRecorder(tr, true)
	r.Block(p.MustBlock("f.entry"))
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return p, tr
}

func TestSeq3WidthLimit(t *testing.T) {
	p, tr := straightProgram(t)
	l := program.OriginalLayout(p)
	res := Simulate(tr, l, DefaultConfig(nil))
	// 40 instructions, 16-wide: 16+16+8 = 3 fetches.
	if res.Instrs != 40 {
		t.Fatalf("instrs = %d, want 40", res.Instrs)
	}
	if res.Fetches != 3 {
		t.Fatalf("fetches = %d, want 3", res.Fetches)
	}
	if res.Cycles != 3 {
		t.Fatalf("cycles = %d, want 3 (ideal cache)", res.Cycles)
	}
	if got := res.IPC(); math.Abs(got-40.0/3) > 1e-9 {
		t.Fatalf("IPC = %v", got)
	}
}

// takenProgram builds: a (cond, taken to c) | b (never runs) | c (ret),
// with c laid out away from a.
func takenProgram(t *testing.T) (*program.Program, *trace.Trace) {
	t.Helper()
	b := program.NewBuilder()
	f := b.Proc("f", "m")
	f.Cond("a", 4, "c")
	f.Jump("b", 20, "c")
	f.Ret("c", 4)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(p)
	r := trace.NewRecorder(tr, true)
	r.Block(p.MustBlock("f.a"))
	r.Block(p.MustBlock("f.c"))
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return p, tr
}

func TestSeq3StopsAtTakenBranch(t *testing.T) {
	p, tr := takenProgram(t)
	l := program.OriginalLayout(p)
	res := Simulate(tr, l, DefaultConfig(nil))
	// Fetch 1: block a (4 instrs), stops at the taken branch.
	// Fetch 2: block c (4 instrs).
	if res.Fetches != 2 {
		t.Fatalf("fetches = %d, want 2", res.Fetches)
	}
	if res.Instrs != 8 {
		t.Fatalf("instrs = %d, want 8", res.Instrs)
	}
}

func TestSeq3MergesAdjacentBlocks(t *testing.T) {
	p, tr := takenProgram(t)
	// Layout placing c directly after a: the branch becomes
	// effectively not-taken and one fetch suffices.
	order := []program.BlockID{
		p.MustBlock("f.a"),
		p.MustBlock("f.c"),
		p.MustBlock("f.b"),
	}
	l := program.NewLayoutFromOrder("opt", p, order)
	res := Simulate(tr, l, DefaultConfig(nil))
	if res.Fetches != 1 {
		t.Fatalf("fetches = %d, want 1", res.Fetches)
	}
	if res.Instrs != 8 {
		t.Fatalf("instrs = %d, want 8", res.Instrs)
	}
}

// branchChain builds 5 adjacent 2-instruction cond blocks that all
// fall through, ending in a return.
func branchChain(t *testing.T) (*program.Program, *trace.Trace) {
	t.Helper()
	b := program.NewBuilder()
	f := b.Proc("f", "m")
	f.Cond("b0", 2, "end")
	f.Cond("b1", 2, "end")
	f.Cond("b2", 2, "end")
	f.Cond("b3", 2, "end")
	f.Ret("end", 2)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(p)
	r := trace.NewRecorder(tr, true)
	for _, n := range []string{"f.b0", "f.b1", "f.b2", "f.b3", "f.end"} {
		r.Block(p.MustBlock(n))
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return p, tr
}

func TestSeq3BranchLimit(t *testing.T) {
	p, tr := branchChain(t)
	l := program.OriginalLayout(p)
	res := Simulate(tr, l, DefaultConfig(nil))
	// All blocks are adjacent (no taken branches), but each cond block
	// ends in a branch: fetch 1 delivers b0,b1,b2 (3 branches = limit,
	// 6 instrs); fetch 2 delivers b3 and the return's first... the
	// return block 'end' ends in a branch too but it's the 2nd branch
	// of fetch 2 and the trace ends: fetch 2 delivers b3+end = 4.
	if res.Fetches != 2 {
		t.Fatalf("fetches = %d, want 2", res.Fetches)
	}
	if res.Instrs != 10 {
		t.Fatalf("instrs = %d, want 10", res.Instrs)
	}
}

func TestSeq3TwoLineLimit(t *testing.T) {
	// One 40-instruction block starting at line 0: a fetch from address
	// 0 may span lines 0 and 1 only (instructions 0..31), but width 16
	// binds first. Use width 32 to exercise the line limit.
	p, tr := straightProgram(t)
	l := program.OriginalLayout(p)
	cfg := DefaultConfig(nil)
	cfg.Width = 32
	res := Simulate(tr, l, cfg)
	// Fetch 1: instructions 0..31 (two lines). Fetch 2: 32..39.
	if res.Fetches != 2 {
		t.Fatalf("fetches = %d, want 2", res.Fetches)
	}
	if res.Instrs != 40 {
		t.Fatalf("instrs = %d, want 40", res.Instrs)
	}
}

func TestMissPenaltyAccounting(t *testing.T) {
	p, tr := straightProgram(t)
	l := program.OriginalLayout(p)
	ic := cache.NewDirectMapped(1024, 64)
	cfg := DefaultConfig(ic)
	res := Simulate(tr, l, cfg)
	// 3 fetches; fetch 1 touches lines 0 (instr 0..15): miss.
	// fetch 2 touches line 1: miss. fetch 3 touches line 2: miss.
	if res.LineMisses != 3 {
		t.Fatalf("line misses = %d, want 3", res.LineMisses)
	}
	if res.Cycles != 3+3*5 {
		t.Fatalf("cycles = %d, want 18", res.Cycles)
	}
	// Re-simulating re-resets the cache: same result.
	res2 := Simulate(tr, l, cfg)
	if res2 != res {
		t.Fatal("simulation is not deterministic across runs")
	}
}

func TestFetchSpanningTwoLinesAccessesBoth(t *testing.T) {
	// Block of 20 instructions starting at instruction 8 of a line:
	// place a 8-instr block before it.
	b := program.NewBuilder()
	f := b.Proc("f", "m")
	f.Fall("pad", 8)
	f.Ret("body", 20)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(p)
	r := trace.NewRecorder(tr, true)
	r.Block(p.MustBlock("f.pad"))
	r.Block(p.MustBlock("f.body"))
	l := program.OriginalLayout(p)
	ic := cache.NewDirectMapped(1024, 64)
	res := Simulate(tr, l, DefaultConfig(ic))
	// Fetch 1 at addr 0: pad(8) + body[0..7] = 16 instrs, line 0 only.
	// Fetch 2 at instr 16 (addr 64): 12 instrs in line 1 only.
	// All three... two lines accessed, both miss.
	if res.Fetches != 2 {
		t.Fatalf("fetches = %d, want 2", res.Fetches)
	}
	if res.LineAccesses != 2 {
		t.Fatalf("line accesses = %d, want 2", res.LineAccesses)
	}
	if res.LineMisses != 2 {
		t.Fatalf("line misses = %d, want 2", res.LineMisses)
	}
	if got := res.MissesPer100Instr(); math.Abs(got-100*2.0/28) > 1e-9 {
		t.Fatalf("miss rate = %v", got)
	}
}

// loopTrace builds a trace of n iterations of a 3-block loop with a
// taken back edge under the original layout.
func loopTrace(t *testing.T, n int) (*program.Program, *trace.Trace) {
	t.Helper()
	b := program.NewBuilder()
	f := b.Proc("f", "m")
	f.Fall("head", 4)
	f.Cond("body", 6, "head") // taken back edge
	f.Ret("exit", 2)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(p)
	r := trace.NewRecorder(tr, true)
	for i := 0; i < n; i++ {
		r.Block(p.MustBlock("f.head"))
		r.Block(p.MustBlock("f.body"))
	}
	r.Block(p.MustBlock("f.head"))
	r.Block(p.MustBlock("f.body"))
	r.Block(p.MustBlock("f.exit"))
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return p, tr
}

func TestTraceCacheCapturesLoop(t *testing.T) {
	p, tr := loopTrace(t, 50)
	l := program.OriginalLayout(p)
	plain := Simulate(tr, l, DefaultConfig(nil))

	cfg := DefaultConfig(nil)
	cfg.TC = cache.NewTraceCache(256, 16, 3, 4)
	withTC := Simulate(tr, l, cfg)
	if withTC.TCHits == 0 {
		t.Fatal("trace cache never hit on a hot loop")
	}
	if withTC.IPC() <= plain.IPC() {
		t.Fatalf("TC IPC %v should beat plain %v on a loop with a taken back edge",
			withTC.IPC(), plain.IPC())
	}
	if withTC.Instrs != plain.Instrs {
		t.Fatalf("instruction counts differ: %d vs %d", withTC.Instrs, plain.Instrs)
	}
}

func TestTraceCacheHitsBypassICache(t *testing.T) {
	p, tr := loopTrace(t, 50)
	l := program.OriginalLayout(p)
	ic := cache.NewDirectMapped(8192, 64)
	cfg := DefaultConfig(ic)
	cfg.TC = cache.NewTraceCache(256, 16, 3, 4)
	res := Simulate(tr, l, cfg)
	// Line accesses only happen on TC misses.
	if res.LineAccesses >= res.Fetches {
		t.Fatalf("line accesses %d should be fewer than fetches %d",
			res.LineAccesses, res.Fetches)
	}
	if res.TCInstrs == 0 || res.TCInstrs >= res.Instrs {
		t.Fatalf("TC delivered %d of %d instrs", res.TCInstrs, res.Instrs)
	}
}

func TestSequentiality(t *testing.T) {
	p, tr := loopTrace(t, 9) // 10 head+body pairs, 10 taken back edges... 9 back edges + exit
	l := program.OriginalLayout(p)
	st := Sequentiality(tr, l)
	// Trace: (head body) x10 + exit. Transitions: 21-1 = 20.
	// head->body adjacent (not taken) x10; body->head taken x9;
	// body->exit adjacent (not taken) x1.
	if st.Transitions != 20 {
		t.Fatalf("transitions = %d, want 20", st.Transitions)
	}
	if st.Taken != 9 {
		t.Fatalf("taken = %d, want 9", st.Taken)
	}
	wantInstr := uint64(10*(4+6) + 2)
	if st.Instrs != wantInstr {
		t.Fatalf("instrs = %d, want %d", st.Instrs, wantInstr)
	}
	if math.Abs(st.InstrPerTaken-float64(wantInstr)/9) > 1e-9 {
		t.Fatalf("instr/taken = %v", st.InstrPerTaken)
	}
}

func TestSequentialityNoTaken(t *testing.T) {
	p, tr := straightProgram(t)
	l := program.OriginalLayout(p)
	st := Sequentiality(tr, l)
	if st.Taken != 0 {
		t.Fatalf("taken = %d, want 0", st.Taken)
	}
	if st.InstrPerTaken != 40 {
		t.Fatalf("instr/taken fallback = %v, want 40", st.InstrPerTaken)
	}
}

func TestIdealIPCEqualsIPCWithoutCache(t *testing.T) {
	p, tr := loopTrace(t, 20)
	l := program.OriginalLayout(p)
	res := Simulate(tr, l, DefaultConfig(nil))
	if math.Abs(res.IPC()-res.IdealIPC()) > 1e-12 {
		t.Fatal("with no cache, IPC must equal IdealIPC")
	}
}

func TestStreamPeekAcrossBlocks(t *testing.T) {
	p, tr := loopTrace(t, 2)
	l := program.OriginalLayout(p)
	s := newStream(tr, l)
	// head starts at 0 (4 instrs), body at 16 (6 instrs).
	if a, ok := s.peek(0); !ok || a != 0 {
		t.Fatalf("peek(0) = %d,%v", a, ok)
	}
	if a, ok := s.peek(4); !ok || a != 16 {
		t.Fatalf("peek(4) = %d,%v, want body start 16", a, ok)
	}
	if a, ok := s.peek(9); !ok || a != 16+5*4 {
		t.Fatalf("peek(9) = %d,%v, want last body instr", a, ok)
	}
	if a, ok := s.peek(10); !ok || a != 0 {
		t.Fatalf("peek(10) = %d,%v, want head again", a, ok)
	}
	total := 0
	for _, b := range tr.Blocks {
		total += p.Block(b).Size
	}
	if _, ok := s.peek(total); ok {
		t.Fatal("peek past end must report false")
	}
	s.advance(total - 1)
	if s.done() {
		t.Fatal("stream should have one instruction left")
	}
	s.advance(1)
	if !s.done() {
		t.Fatal("stream should be exhausted")
	}
}
