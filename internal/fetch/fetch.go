// Package fetch simulates the instruction-fetch front end used in the
// paper's evaluation (Section 7): the SEQ.3 sequential fetch unit of
// Rotenberg et al. — which delivers, per cycle, the instructions from
// the fetch address up to the first taken branch, up to three
// branches, up to 16 instructions, from at most two consecutive cache
// lines — with perfect branch prediction, a fixed i-cache miss penalty,
// and an optional trace cache in front.
//
// The simulator consumes a dynamic basic-block trace (package trace)
// and a code layout (package program): the same trace replayed under
// different layouts yields the paper's per-layout miss rates (Table 3)
// and fetch bandwidths (Table 4).
package fetch

import (
	"repro/internal/cache"
	"repro/internal/program"
	"repro/internal/trace"
)

// Config parameterizes one simulation.
type Config struct {
	// Width is the maximum instructions delivered per fetch (16).
	Width int
	// MaxBranches is the per-fetch branch limit (3). All branch kinds
	// count: conditional, unconditional, calls and returns.
	MaxBranches int
	// MaxLines is the number of consecutive cache lines a fetch may
	// span (2).
	MaxLines int
	// MissPenalty is the extra cycles charged per missing line (5).
	MissPenalty uint64
	// ICache is the instruction cache; nil simulates a perfect cache
	// (the paper's "Ideal" rows).
	ICache cache.ICache
	// TC is an optional trace cache consulted before the i-cache; a
	// trace-cache hit delivers its whole trace in one cycle with no
	// miss penalty.
	TC *cache.TraceCache
	// LineBytes is the cache line size; defaulted from ICache, or 64.
	LineBytes int
}

// DefaultConfig returns the paper's SEQ.3 setup over the given cache.
func DefaultConfig(ic cache.ICache) Config {
	return Config{
		Width:       16,
		MaxBranches: 3,
		MaxLines:    2,
		MissPenalty: 5,
		ICache:      ic,
	}
}

func (c *Config) lineBytes() uint64 {
	if c.LineBytes > 0 {
		return uint64(c.LineBytes)
	}
	if c.ICache != nil {
		return uint64(c.ICache.LineBytes())
	}
	return cache.DefaultLineBytes
}

// Result aggregates one simulation run.
type Result struct {
	Instrs       uint64 // dynamic instructions delivered
	Fetches      uint64 // fetch requests (cycles without penalties)
	Cycles       uint64 // total cycles including miss penalties
	LineAccesses uint64 // i-cache line accesses
	LineMisses   uint64 // i-cache line misses
	TCHits       uint64 // trace-cache hits
	TCMisses     uint64 // trace-cache misses
	TCInstrs     uint64 // instructions delivered by the trace cache
}

// IPC is the fetch bandwidth in instructions per cycle (Table 4).
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// IdealIPC is the bandwidth assuming every access hits (instructions
// per fetch request).
func (r Result) IdealIPC() float64 {
	if r.Fetches == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Fetches)
}

// MissesPer100Instr is the paper's Table 3 metric: i-cache misses per
// instruction executed, in percent.
func (r Result) MissesPer100Instr() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return 100 * float64(r.LineMisses) / float64(r.Instrs)
}

// stream walks a dynamic trace as a sequence of instruction addresses
// under a given layout.
type stream struct {
	blocks []program.BlockID
	addr   []uint64 // per-block start address (layout)
	size   []int32  // per-block instruction count
	kind   []program.BlockKind
	idx    int   // current block index within blocks
	off    int32 // instruction offset within current block
}

func newStream(t *trace.Trace, l *program.Layout) *stream {
	p := t.Program()
	n := p.NumBlocks()
	s := &stream{
		blocks: t.Blocks,
		addr:   l.Addr,
		size:   make([]int32, n),
		kind:   make([]program.BlockKind, n),
	}
	for i := 0; i < n; i++ {
		b := p.Block(program.BlockID(i))
		s.size[i] = int32(b.Size)
		s.kind[i] = b.Kind
	}
	return s
}

// done reports whether the stream is exhausted.
func (s *stream) done() bool { return s.idx >= len(s.blocks) }

// cur returns the address of the current instruction.
func (s *stream) cur() uint64 {
	b := s.blocks[s.idx]
	return s.addr[b] + uint64(s.off)*program.InstrBytes
}

// peek returns the address of the k-th upcoming instruction (k=0 is
// the current one) and whether it exists.
func (s *stream) peek(k int) (uint64, bool) {
	idx, off := s.idx, s.off
	for idx < len(s.blocks) {
		b := s.blocks[idx]
		remain := int(s.size[b] - off)
		if k < remain {
			return s.addr[b] + uint64(off+int32(k))*program.InstrBytes, true
		}
		k -= remain
		idx++
		off = 0
	}
	return 0, false
}

// advance moves the stream forward n instructions.
func (s *stream) advance(n int) {
	for n > 0 && s.idx < len(s.blocks) {
		b := s.blocks[s.idx]
		remain := int(s.size[b] - s.off)
		if n < remain {
			s.off += int32(n)
			return
		}
		n -= remain
		s.idx++
		s.off = 0
	}
}

// Simulate runs the fetch engine over the whole trace under the given
// layout and configuration.
func Simulate(t *trace.Trace, l *program.Layout, cfg Config) Result {
	var r Result
	s := newStream(t, l)
	lineBytes := cfg.lineBytes()
	if cfg.ICache != nil {
		cfg.ICache.Reset()
	}
	if cfg.TC != nil {
		cfg.TC.Reset()
	}
	var tcFill []uint64
	for !s.done() {
		fetchAddr := s.cur()
		// Trace cache first: a hit delivers the stored trace in one
		// cycle, bypassing the i-cache.
		if cfg.TC != nil {
			if n, hit := cfg.TC.Lookup(fetchAddr, s.peek); hit {
				s.advance(n)
				r.Instrs += uint64(n)
				r.TCInstrs += uint64(n)
				r.TCHits++
				r.Fetches++
				r.Cycles++
				continue
			}
			r.TCMisses++
			// Fill the trace cache from the actual dynamic stream:
			// up to MaxInstrs instructions / MaxBranches branches.
			tcFill = buildTCFill(s, cfg.TC, tcFill[:0])
		}
		// SEQ.3 i-cache fetch.
		n, lastAddr := s.seq3(cfg, lineBytes)
		r.Instrs += uint64(n)
		r.Fetches++
		r.Cycles++
		if cfg.ICache != nil {
			misses := uint64(0)
			r.LineAccesses++
			if !cfg.ICache.Access(fetchAddr) {
				misses++
			}
			if lastAddr/lineBytes != fetchAddr/lineBytes {
				r.LineAccesses++
				if !cfg.ICache.Access(lastAddr) {
					misses++
				}
			}
			r.LineMisses += misses
			r.Cycles += misses * cfg.MissPenalty
		}
		if cfg.TC != nil {
			cfg.TC.Fill(fetchAddr, tcFill)
		}
	}
	return r
}

// seq3 performs one SEQ.3 fetch from the current stream position,
// advancing the stream. It returns the number of instructions
// delivered and the address of the last one.
func (s *stream) seq3(cfg Config, lineBytes uint64) (int, uint64) {
	fetchAddr := s.cur()
	limit := (fetchAddr/lineBytes + uint64(cfg.MaxLines)) * lineBytes
	n := 0
	branches := 0
	lastAddr := fetchAddr
	for !s.done() && n < cfg.Width {
		b := s.blocks[s.idx]
		a := s.addr[b] + uint64(s.off)*program.InstrBytes
		if a >= limit {
			break // would leave the two consecutive lines
		}
		n++
		lastAddr = a
		if int32(s.off) == s.size[b]-1 {
			// Block terminator: classify the transition.
			isBranch := s.kind[b] != program.KindFallThrough
			s.idx++
			s.off = 0
			if isBranch {
				branches++
			}
			if s.done() {
				break
			}
			next := s.blocks[s.idx]
			taken := s.addr[next] != a+program.InstrBytes
			if taken {
				break // fetch stops at the first taken control transfer
			}
			if branches >= cfg.MaxBranches {
				break
			}
		} else {
			s.off++
		}
	}
	return n, lastAddr
}

// buildTCFill collects the instruction addresses of the trace-cache
// line starting at the current stream position: up to MaxInstrs
// instructions and MaxBranches branch instructions, following the
// actual dynamic path (taken branches included — that is the point of
// a trace cache).
func buildTCFill(s *stream, tc *cache.TraceCache, buf []uint64) []uint64 {
	idx, off := s.idx, s.off
	branches := 0
	for len(buf) < tc.MaxInstrs() && idx < len(s.blocks) {
		b := s.blocks[idx]
		buf = append(buf, s.addr[b]+uint64(off)*program.InstrBytes)
		if int32(off) == s.size[b]-1 {
			if s.kind[b] != program.KindFallThrough {
				branches++
				if branches >= tc.MaxBranches() {
					break
				}
			}
			idx++
			off = 0
		} else {
			off++
		}
	}
	return buf
}

// SequentialityStats summarizes how sequential a layout renders the
// dynamic instruction stream: the number of taken control transfers
// (address discontinuities) and the paper's headline metric,
// instructions executed between taken branches (8.9 for the original
// PostgreSQL layout, 22.4 after STC reordering).
type SequentialityStats struct {
	Instrs        uint64
	Taken         uint64
	Transitions   uint64
	InstrPerTaken float64
}

// Sequentiality computes SequentialityStats for a trace under a layout.
func Sequentiality(t *trace.Trace, l *program.Layout) SequentialityStats {
	var st SequentialityStats
	p := t.Program()
	for i, b := range t.Blocks {
		blk := p.Block(b)
		st.Instrs += uint64(blk.Size)
		if i+1 < len(t.Blocks) {
			st.Transitions++
			endAddr := l.Addr[b] + blk.SizeBytes()
			if l.Addr[t.Blocks[i+1]] != endAddr {
				st.Taken++
			}
		}
	}
	if st.Taken > 0 {
		st.InstrPerTaken = float64(st.Instrs) / float64(st.Taken)
	} else {
		st.InstrPerTaken = float64(st.Instrs)
	}
	return st
}
