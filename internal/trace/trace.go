// Package trace records dynamic basic-block traces of an instrumented
// program image (package program). The instrumented database kernel
// emits one event per executed basic block; the resulting trace drives
// profiling (package profile) and the fetch/cache simulators (packages
// fetch and cache), exactly as the paper's ATOM-instrumented PostgreSQL
// binary feeds its simulators.
package trace

import (
	"fmt"

	"repro/internal/program"
)

// Trace is an in-memory dynamic basic-block trace.
type Trace struct {
	prog *program.Program
	// Blocks is the executed block sequence, in order.
	Blocks []program.BlockID
	// Instrs is the total number of dynamic instructions.
	Instrs uint64
	// Marks label positions in the trace (query boundaries).
	Marks []Mark
}

// Mark labels a position in the trace, typically a query boundary.
type Mark struct {
	Pos   int // index into Blocks where the marked region starts
	Label string
}

// New returns an empty trace over the given program image.
func New(p *program.Program) *Trace {
	return &Trace{prog: p}
}

// Program returns the program image this trace was recorded over.
func (t *Trace) Program() *program.Program { return t.prog }

// Len returns the number of dynamic block events.
func (t *Trace) Len() int { return len(t.Blocks) }

// Replay invokes f for every block event in order.
func (t *Trace) Replay(f func(program.BlockID)) {
	for _, b := range t.Blocks {
		f(b)
	}
}

// Append concatenates another trace recorded over the same program.
func (t *Trace) Append(other *Trace) {
	base := len(t.Blocks)
	t.Blocks = append(t.Blocks, other.Blocks...)
	t.Instrs += other.Instrs
	for _, m := range other.Marks {
		t.Marks = append(t.Marks, Mark{Pos: base + m.Pos, Label: m.Label})
	}
}

// Recorder emits block events into a Trace while (optionally)
// validating that every dynamic transition corresponds to a legal
// static control transfer and that calls and returns pair up.
//
// The instrumented kernel calls Block for every executed basic block,
// in execution order. Call blocks push their continuation; return
// blocks pop it and require the next event to be that continuation.
type Recorder struct {
	prog     *program.Program
	t        *Trace
	validate bool

	last    program.BlockID // last emitted block, or program.NoBlock
	stack   []program.BlockID
	pending bool // a return was emitted; next block must be stack top
	// unknown is set after a return above the tracing start point
	// (empty stack): the next transition cannot be validated, exactly
	// as when binary instrumentation attaches mid-execution.
	unknown bool
	err     error
}

// NewRecorder returns a Recorder appending into t. If validate is
// true, every transition is checked against the static CFG (slower;
// used by tests and the profiler's self-check mode).
func NewRecorder(t *Trace, validate bool) *Recorder {
	return &Recorder{prog: t.prog, t: t, validate: validate, last: program.NoBlock}
}

// Trace returns the underlying trace.
func (r *Recorder) Trace() *Trace { return r.t }

// Err returns the first validation error encountered, or nil.
func (r *Recorder) Err() error { return r.err }

// Depth returns the current call-stack depth.
func (r *Recorder) Depth() int { return len(r.stack) }

// Mark records a labelled position (e.g. the start of a query).
func (r *Recorder) Mark(label string) {
	r.t.Marks = append(r.t.Marks, Mark{Pos: len(r.t.Blocks), Label: label})
}

// Block records the execution of basic block b.
func (r *Recorder) Block(b program.BlockID) {
	switch {
	case r.pending:
		// The previous event was a return: this block must be the
		// continuation on top of the call stack.
		r.pending = false
		want := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		if r.validate && r.err == nil && b != want {
			r.err = fmt.Errorf("trace: return went to %s, expected continuation %s",
				r.prog.Block(b).Name, r.prog.Block(want).Name)
		}
	case r.unknown:
		r.unknown = false
	default:
		if r.validate && r.err == nil && r.last != program.NoBlock {
			if !r.prog.ValidEdge(r.last, b) {
				r.err = fmt.Errorf("trace: illegal transition %s -> %s",
					r.prog.Block(r.last).Name, r.prog.Block(b).Name)
			}
		}
	}
	blk := r.prog.Block(b)
	r.t.Blocks = append(r.t.Blocks, b)
	r.t.Instrs += uint64(blk.Size)
	switch blk.Kind {
	case program.KindCall:
		r.stack = append(r.stack, blk.Succs[0])
	case program.KindReturn:
		if len(r.stack) > 0 {
			r.pending = true
		} else {
			// Return above the tracing start point: legal, but the
			// next transition is unknowable.
			r.unknown = true
		}
	}
	r.last = b
}

// Path records the execution of a pre-declared sequence of blocks (a
// convenience for hot instrumentation sites).
func (r *Recorder) Path(p []program.BlockID) {
	for _, b := range p {
		r.Block(b)
	}
}
