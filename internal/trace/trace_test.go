package trace

import (
	"strings"
	"testing"

	"repro/internal/program"
)

// testProgram builds the same main/helper pair used by the program
// package tests.
func testProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder()
	m := b.Proc("main", "core")
	m.Fall("entry", 3)
	m.Cond("loop", 2, "exit")
	m.Call("callh", 1, "helper")
	m.Jump("back", 2, "loop")
	m.Ret("exit", 1)
	h := b.Proc("helper", "lib")
	h.Fall("entry", 4)
	h.Ret("ret", 1)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// emitRun records N iterations of the main loop then the exit path.
func emitRun(t *testing.T, p *program.Program, r *Recorder, iters int) {
	t.Helper()
	id := p.MustBlock
	r.Block(id("main.entry"))
	for i := 0; i < iters; i++ {
		r.Block(id("main.loop"))
		r.Block(id("main.callh"))
		r.Block(id("helper.entry"))
		r.Block(id("helper.ret"))
		r.Block(id("main.back"))
	}
	r.Block(id("main.loop"))
	r.Block(id("main.exit"))
}

func TestRecorderValidRun(t *testing.T) {
	p := testProgram(t)
	tr := New(p)
	r := NewRecorder(tr, true)
	emitRun(t, p, r, 3)
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected validation error: %v", err)
	}
	wantBlocks := 1 + 3*5 + 2
	if tr.Len() != wantBlocks {
		t.Fatalf("trace length = %d, want %d", tr.Len(), wantBlocks)
	}
	wantInstr := uint64(3 + 3*(2+1+4+1+2) + 2 + 1)
	if tr.Instrs != wantInstr {
		t.Fatalf("Instrs = %d, want %d", tr.Instrs, wantInstr)
	}
}

func TestRecorderCatchesIllegalTransition(t *testing.T) {
	p := testProgram(t)
	r := NewRecorder(New(p), true)
	r.Block(p.MustBlock("main.entry"))
	r.Block(p.MustBlock("main.exit")) // entry falls through to loop, not exit
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "illegal transition") {
		t.Fatalf("want illegal-transition error, got %v", err)
	}
}

func TestRecorderCatchesWrongReturn(t *testing.T) {
	p := testProgram(t)
	// Build a second caller so a wrong continuation exists.
	b := program.NewBuilder()
	f := b.Proc("f", "m")
	f.Call("c1", 1, "g")
	f.Call("c2", 1, "g")
	f.Ret("exit", 1)
	g := b.Proc("g", "m")
	g.Ret("entry", 1)
	p2, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	_ = p
	r := NewRecorder(New(p2), true)
	r.Block(p2.MustBlock("f.c1"))
	r.Block(p2.MustBlock("g.entry"))
	r.Block(p2.MustBlock("f.exit")) // should return to f.c2
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "expected continuation") {
		t.Fatalf("want continuation error, got %v", err)
	}
}

func TestReturnAboveTraceStartIsTolerated(t *testing.T) {
	// Tracing may begin mid-execution: a return with an empty stack is
	// legal and the following transition is simply unvalidated.
	p := testProgram(t)
	r := NewRecorder(New(p), true)
	r.Block(p.MustBlock("helper.entry"))
	r.Block(p.MustBlock("helper.ret")) // no call on the stack
	r.Block(p.MustBlock("main.entry")) // arbitrary next block: fine
	r.Block(p.MustBlock("main.loop"))  // validated again from here
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	r.Block(p.MustBlock("main.entry")) // loop -> entry is illegal
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "illegal transition") {
		t.Fatalf("validation should resume after unknown transition, got %v", err)
	}
}

func TestRecorderStackBalancedInFastMode(t *testing.T) {
	p := testProgram(t)
	r := NewRecorder(New(p), false)
	emitRun(t, p, r, 100)
	if r.Depth() != 0 {
		t.Fatalf("call stack depth = %d after balanced run, want 0", r.Depth())
	}
}

func TestMarksAndAppend(t *testing.T) {
	p := testProgram(t)
	t1 := New(p)
	r1 := NewRecorder(t1, true)
	r1.Mark("q1")
	emitRun(t, p, r1, 1)
	t2 := New(p)
	r2 := NewRecorder(t2, true)
	r2.Mark("q2")
	emitRun(t, p, r2, 2)

	total := New(p)
	total.Append(t1)
	total.Append(t2)
	if total.Len() != t1.Len()+t2.Len() {
		t.Fatalf("appended length = %d, want %d", total.Len(), t1.Len()+t2.Len())
	}
	if total.Instrs != t1.Instrs+t2.Instrs {
		t.Fatal("appended instruction count mismatch")
	}
	if len(total.Marks) != 2 {
		t.Fatalf("marks = %d, want 2", len(total.Marks))
	}
	if total.Marks[0].Label != "q1" || total.Marks[0].Pos != 0 {
		t.Fatalf("mark 0 = %+v", total.Marks[0])
	}
	if total.Marks[1].Label != "q2" || total.Marks[1].Pos != t1.Len() {
		t.Fatalf("mark 1 = %+v, want pos %d", total.Marks[1], t1.Len())
	}
}

func TestReplayVisitsAllInOrder(t *testing.T) {
	p := testProgram(t)
	tr := New(p)
	r := NewRecorder(tr, true)
	emitRun(t, p, r, 2)
	var got []program.BlockID
	tr.Replay(func(b program.BlockID) { got = append(got, b) })
	if len(got) != tr.Len() {
		t.Fatalf("replay visited %d, want %d", len(got), tr.Len())
	}
	for i, b := range got {
		if b != tr.Blocks[i] {
			t.Fatalf("replay order differs at %d", i)
		}
	}
}

func TestPathEmitsEachBlock(t *testing.T) {
	p := testProgram(t)
	tr := New(p)
	r := NewRecorder(tr, true)
	id := p.MustBlock
	r.Path([]program.BlockID{id("main.entry"), id("main.loop")})
	if tr.Len() != 2 || r.Err() != nil {
		t.Fatalf("path emit failed: len=%d err=%v", tr.Len(), r.Err())
	}
}

// Property: every dynamic transition recorded by a validating recorder
// that reports no error is a legal static edge (returns validated via
// the stack).
func TestDynamicEdgesAreStaticEdges(t *testing.T) {
	p := testProgram(t)
	tr := New(p)
	r := NewRecorder(tr, true)
	emitRun(t, p, r, 10)
	if err := r.Err(); err != nil {
		t.Fatalf("validation: %v", err)
	}
	for i := 1; i < tr.Len(); i++ {
		from, to := tr.Blocks[i-1], tr.Blocks[i]
		if !p.ValidEdge(from, to) {
			t.Fatalf("recorded transition %s -> %s is not a static edge",
				p.Block(from).Name, p.Block(to).Name)
		}
	}
}
