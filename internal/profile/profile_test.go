package profile

import (
	"math"
	"testing"

	"repro/internal/program"
	"repro/internal/trace"
)

// loopProgram: main loop calling helper, with a cold error procedure
// that never runs.
func loopProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder()
	m := b.Proc("main", "core")
	m.Fall("entry", 3)
	m.Cond("loop", 2, "exit")
	m.Call("callh", 1, "helper")
	m.Jump("back", 2, "loop")
	m.Ret("exit", 1)
	h := b.Proc("helper", "lib")
	h.Cond("entry", 4, "slow")
	h.Ret("ret", 1)
	h.Jump("slow", 6, "ret2")
	h.Ret("ret2", 1)
	c := b.ColdProc("elog", "error")
	c.Fall("entry", 10)
	c.Ret("ret", 1)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// record runs `iters` loop iterations; every `slowEvery`-th helper call
// takes the slow path.
func record(t *testing.T, p *program.Program, iters, slowEvery int) *trace.Trace {
	t.Helper()
	tr := trace.New(p)
	r := trace.NewRecorder(tr, true)
	id := p.MustBlock
	r.Block(id("main.entry"))
	for i := 0; i < iters; i++ {
		r.Block(id("main.loop"))
		r.Block(id("main.callh"))
		r.Block(id("helper.entry"))
		if slowEvery > 0 && i%slowEvery == slowEvery-1 {
			r.Block(id("helper.slow"))
			r.Block(id("helper.ret2"))
		} else {
			r.Block(id("helper.ret"))
		}
		r.Block(id("main.back"))
	}
	r.Block(id("main.loop"))
	r.Block(id("main.exit"))
	if err := r.Err(); err != nil {
		t.Fatalf("trace validation: %v", err)
	}
	return tr
}

func TestBlockAndEdgeCounts(t *testing.T) {
	p := loopProgram(t)
	tr := record(t, p, 10, 5)
	pr := FromTrace(tr)
	id := p.MustBlock
	if got := pr.Weight(id("main.loop")); got != 11 {
		t.Fatalf("main.loop weight = %d, want 11", got)
	}
	if got := pr.Weight(id("helper.entry")); got != 10 {
		t.Fatalf("helper.entry weight = %d, want 10", got)
	}
	if got := pr.Weight(id("helper.slow")); got != 2 {
		t.Fatalf("helper.slow weight = %d, want 2", got)
	}
	if got := pr.Weight(id("elog.entry")); got != 0 {
		t.Fatalf("cold block executed %d times", got)
	}
	if got := pr.EdgeCount[Edge{id("main.loop"), id("main.exit")}]; got != 1 {
		t.Fatalf("loop->exit edge = %d, want 1", got)
	}
	if got := pr.EdgeCount[Edge{id("main.callh"), id("helper.entry")}]; got != 10 {
		t.Fatalf("call edge = %d, want 10", got)
	}
	if pr.DynBlocks != uint64(tr.Len()) {
		t.Fatalf("DynBlocks = %d, want %d", pr.DynBlocks, tr.Len())
	}
	if pr.DynInstrs != tr.Instrs {
		t.Fatalf("DynInstrs = %d, want %d", pr.DynInstrs, tr.Instrs)
	}
}

func TestSuccsSortedAndBranchProb(t *testing.T) {
	p := loopProgram(t)
	tr := record(t, p, 10, 5)
	pr := FromTrace(tr)
	id := p.MustBlock
	succs := pr.Succs(id("helper.entry"))
	if len(succs) != 2 {
		t.Fatalf("helper.entry has %d dynamic successors, want 2", len(succs))
	}
	if succs[0].To != id("helper.ret") || succs[0].Count != 8 {
		t.Fatalf("dominant successor = %+v, want helper.ret x8", succs[0])
	}
	if got := pr.BranchProb(id("helper.entry"), id("helper.ret")); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("BranchProb = %v, want 0.8", got)
	}
	if got := pr.BranchProb(id("elog.entry"), id("elog.ret")); got != 0 {
		t.Fatalf("BranchProb of unexecuted block = %v, want 0", got)
	}
}

func TestFootprint(t *testing.T) {
	p := loopProgram(t)
	tr := record(t, p, 10, 5)
	pr := FromTrace(tr)
	fs := pr.Footprint()
	if fs.TotalProcs != 3 || fs.ExecProcs != 2 {
		t.Fatalf("procs = %d/%d, want 2/3", fs.ExecProcs, fs.TotalProcs)
	}
	if fs.TotalBlocks != 11 || fs.ExecBlocks != 9 {
		t.Fatalf("blocks = %d/%d, want 9/11", fs.ExecBlocks, fs.TotalBlocks)
	}
	if fs.TotalInstrs != p.NumInstructions() {
		t.Fatal("total instr mismatch")
	}
	wantExec := p.NumInstructions() - 11 // cold proc has 11 instrs
	if fs.ExecInstrs != wantExec {
		t.Fatalf("exec instrs = %d, want %d", fs.ExecInstrs, wantExec)
	}
	if math.Abs(fs.PctProcs()-100*2.0/3.0) > 1e-9 {
		t.Fatalf("PctProcs = %v", fs.PctProcs())
	}
}

func TestCumulativeRefsMonotoneAndComplete(t *testing.T) {
	p := loopProgram(t)
	tr := record(t, p, 50, 3)
	pr := FromTrace(tr)
	cum := pr.CumulativeRefs()
	if len(cum) != 9 {
		t.Fatalf("cum length = %d, want 9 executed blocks", len(cum))
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatal("cumulative curve must be non-decreasing")
		}
	}
	if math.Abs(cum[len(cum)-1]-1.0) > 1e-9 {
		t.Fatalf("curve must end at 1.0, got %v", cum[len(cum)-1])
	}
	if n := pr.BlocksForCoverage(1.0); n != 9 {
		t.Fatalf("BlocksForCoverage(1.0) = %d, want 9", n)
	}
	if n := pr.BlocksForCoverage(0.1); n != 1 {
		t.Fatalf("BlocksForCoverage(0.1) = %d, want 1", n)
	}
}

func TestPopularSetCoversRequestedFraction(t *testing.T) {
	p := loopProgram(t)
	tr := record(t, p, 50, 3)
	pr := FromTrace(tr)
	set := pr.PopularSet(0.75)
	var covered uint64
	for b := range set {
		covered += pr.BlockCount[b]
	}
	if float64(covered) < 0.75*float64(pr.DynBlocks) {
		t.Fatalf("popular set covers %d of %d references", covered, pr.DynBlocks)
	}
	// Must be a prefix of the popularity ranking: every member at least
	// as popular as every non-member.
	var minIn uint64 = math.MaxUint64
	for b := range set {
		if pr.BlockCount[b] < minIn {
			minIn = pr.BlockCount[b]
		}
	}
	for b, c := range pr.BlockCount {
		if c > minIn && !set[program.BlockID(b)] {
			t.Fatalf("block %d (count %d) excluded while min in-set count is %d", b, c, minIn)
		}
	}
}

func TestReuseDistance(t *testing.T) {
	p := loopProgram(t)
	tr := record(t, p, 20, 0) // never slow: loop body is 11 instrs/iter
	id := p.MustBlock
	track := map[program.BlockID]bool{id("main.loop"): true}
	st := Reuse(tr, track, []uint64{5, 100})
	if st.Reexecutions != 20 {
		t.Fatalf("reexecutions = %d, want 20", st.Reexecutions)
	}
	// Per iteration, between two main.loop executions: callh(1) +
	// helper.entry(4) + helper.ret(1) + back(2) = 8 instructions.
	if st.Prob[0] != 0 {
		t.Fatalf("P(dist<5) = %v, want 0 (distance is 8)", st.Prob[0])
	}
	if st.Prob[1] != 1 {
		t.Fatalf("P(dist<100) = %v, want 1", st.Prob[1])
	}
}

func TestReuseThresholdsSorted(t *testing.T) {
	p := loopProgram(t)
	tr := record(t, p, 5, 0)
	id := p.MustBlock
	st := Reuse(tr, map[program.BlockID]bool{id("main.loop"): true}, []uint64{250, 100})
	if st.Thresholds[0] != 100 || st.Thresholds[1] != 250 {
		t.Fatalf("thresholds not sorted: %v", st.Thresholds)
	}
	if st.Prob[0] > st.Prob[1] {
		t.Fatal("P(<100) cannot exceed P(<250)")
	}
}

func TestTypeBreakdown(t *testing.T) {
	p := loopProgram(t)
	tr := record(t, p, 10, 2) // helper branch 50/50 -> unpredictable
	pr := FromTrace(tr)
	st := pr.TypeBreakdown()

	// Static classes among the 9 executed blocks: fallthrough 1
	// (main.entry), branch 4 (main.loop, main.back, helper.entry,
	// helper.slow), call 1, return 3.
	if got := st.Rows[ClassFallThrough].StaticPct; math.Abs(got-100.0/9) > 1e-9 {
		t.Fatalf("fallthrough static pct = %v", got)
	}
	if got := st.Rows[ClassBranch].StaticPct; math.Abs(got-400.0/9) > 1e-9 {
		t.Fatalf("branch static pct = %v", got)
	}
	// Fall-through, call, return rows are 100% predictable by
	// construction (fixed target / return-address stack).
	for _, cl := range []TypeClass{ClassFallThrough, ClassCall, ClassReturn} {
		if got := st.Rows[cl].PredictablePct; math.Abs(got-100) > 1e-9 {
			t.Fatalf("%v predictable pct = %v, want 100", cl, got)
		}
	}
	// helper.entry alternates 50/50 so its executions are unpredictable;
	// main.loop is 11/12 taken-to-callh (below 0.95), also unpredictable;
	// main.back and helper.slow are unconditional (predictable).
	br := st.Rows[ClassBranch]
	if br.PredictablePct >= 100 {
		t.Fatalf("branch predictability should be <100, got %v", br.PredictablePct)
	}
	if st.OverallPct <= 0 || st.OverallPct >= 100 {
		t.Fatalf("overall predictability = %v, want in (0,100)", st.OverallPct)
	}
	// Dynamic percentages must sum to 100.
	var sum float64
	for _, r := range st.Rows {
		sum += r.DynamicPct
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("dynamic percentages sum to %v", sum)
	}
}

func TestTypeClassString(t *testing.T) {
	want := map[TypeClass]string{
		ClassFallThrough: "Fall-through",
		ClassBranch:      "Branch",
		ClassCall:        "Subroutine call",
		ClassReturn:      "Subroutine return",
	}
	for cl, s := range want {
		if cl.String() != s {
			t.Errorf("%d.String() = %q, want %q", cl, cl.String(), s)
		}
	}
}

func TestAddTraceAccumulates(t *testing.T) {
	p := loopProgram(t)
	t1 := record(t, p, 5, 0)
	t2 := record(t, p, 7, 0)
	pr := New(p)
	pr.AddTrace(t1)
	pr.AddTrace(t2)
	if pr.DynBlocks != uint64(t1.Len()+t2.Len()) {
		t.Fatal("AddTrace did not accumulate block counts")
	}
	id := p.MustBlock
	if got := pr.Weight(id("main.entry")); got != 2 {
		t.Fatalf("main.entry weight = %d, want 2", got)
	}
}

func TestProcWeight(t *testing.T) {
	p := loopProgram(t)
	tr := record(t, p, 4, 0)
	pr := FromTrace(tr)
	if got := pr.ProcWeight(p.MustProc("helper")); got != 4 {
		t.Fatalf("helper proc weight = %d, want 4", got)
	}
	if got := pr.ProcWeight(p.MustProc("elog")); got != 0 {
		t.Fatalf("cold proc weight = %d, want 0", got)
	}
}
