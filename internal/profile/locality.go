package profile

import (
	"sort"

	"repro/internal/program"
	"repro/internal/trace"
)

// ReuseStats summarizes the temporal locality of a set of blocks: the
// probability that a block of the set is re-executed within a given
// number of dynamic instructions of its previous execution
// (Section 4.1 of the paper: 33% within 250 instructions, 19% within
// 100, for the blocks concentrating 75% of references).
type ReuseStats struct {
	// Thresholds are the instruction-distance cut-offs examined.
	Thresholds []uint64
	// Prob[i] is the fraction of re-executions of tracked blocks whose
	// distance to the previous execution was < Thresholds[i].
	Prob []float64
	// Reexecutions is the number of (non-first) executions observed.
	Reexecutions uint64
}

// Reuse computes reuse-distance statistics over a trace for the given
// subset of blocks. Distance is measured in dynamic instructions
// executed between two consecutive invocations of the same block
// (exclusive of the block itself).
func Reuse(t *trace.Trace, track map[program.BlockID]bool, thresholds []uint64) ReuseStats {
	th := append([]uint64(nil), thresholds...)
	sort.Slice(th, func(i, j int) bool { return th[i] < th[j] })
	counts := make([]uint64, len(th))
	lastSeen := make(map[program.BlockID]uint64, len(track))
	var clock uint64 // dynamic instructions executed so far
	var reexec uint64
	prog := t.Program()
	for _, b := range t.Blocks {
		if track[b] {
			if prev, seen := lastSeen[b]; seen {
				reexec++
				dist := clock - prev
				for i, cut := range th {
					if dist < cut {
						counts[i]++
					}
				}
			}
			// Distance excludes the block's own instructions: record
			// the clock after this execution completes.
			lastSeen[b] = clock + uint64(prog.Block(b).Size)
		}
		clock += uint64(prog.Block(b).Size)
	}
	st := ReuseStats{Thresholds: th, Prob: make([]float64, len(th)), Reexecutions: reexec}
	if reexec > 0 {
		for i, c := range counts {
			st.Prob[i] = float64(c) / float64(reexec)
		}
	}
	return st
}

// TypeClass is the paper's Table 2 block taxonomy.
type TypeClass int

const (
	ClassFallThrough TypeClass = iota
	ClassBranch                // conditional or unconditional branch
	ClassCall                  // subroutine call or indirect jump
	ClassReturn
	numClasses
)

// String returns the paper's row label for the class.
func (c TypeClass) String() string {
	switch c {
	case ClassFallThrough:
		return "Fall-through"
	case ClassBranch:
		return "Branch"
	case ClassCall:
		return "Subroutine call"
	case ClassReturn:
		return "Subroutine return"
	}
	return "?"
}

// ClassOf maps a block kind to its Table 2 class.
func ClassOf(k program.BlockKind) TypeClass {
	switch k {
	case program.KindFallThrough:
		return ClassFallThrough
	case program.KindCondBranch, program.KindJump:
		return ClassBranch
	case program.KindCall:
		return ClassCall
	case program.KindReturn:
		return ClassReturn
	}
	return ClassFallThrough
}

// TypeRow is one row of Table 2.
type TypeRow struct {
	Class TypeClass
	// StaticPct is the share of this class among executed static blocks.
	StaticPct float64
	// DynamicPct is the share among dynamic block executions.
	DynamicPct float64
	// PredictablePct is the share of the class's dynamic executions
	// coming from blocks that behave in a fixed way.
	PredictablePct float64
}

// TypeStats is Table 2 plus the overall predictability number quoted
// in the text ("Overall, 80% of the basic block transitions are
// predictable").
type TypeStats struct {
	Rows       [4]TypeRow
	OverallPct float64
}

// FixedThreshold is the dominant-successor probability above which a
// conditional branch counts as behaving "in a fixed way" (always taken
// or always not taken). The paper does not state its cut-off; 0.95
// reproduces the reported structure.
const FixedThreshold = 0.95

// TypeBreakdown computes Table 2 from the profile. Fall-through blocks
// always continue at the next block; unconditional jumps, calls and
// (with a return-address stack) returns have fixed targets, so the
// paper counts them 100% predictable. Conditional branches count as
// predictable when one direction captures at least FixedThreshold of
// their dynamic transitions.
func (p *Profile) TypeBreakdown() TypeStats {
	var staticN, dynN [numClasses]uint64
	var predN [numClasses]uint64
	var staticTot, dynTot, predTot uint64
	for b, c := range p.BlockCount {
		if c == 0 {
			continue
		}
		blk := p.Prog.Block(program.BlockID(b))
		cl := ClassOf(blk.Kind)
		staticN[cl]++
		staticTot++
		dynN[cl] += c
		dynTot += c
		var fixed bool
		if blk.Kind == program.KindCondBranch {
			fixed = p.dominantShare(program.BlockID(b)) >= FixedThreshold
		} else {
			fixed = true
		}
		if fixed {
			predN[cl] += c
			predTot += c
		}
	}
	var st TypeStats
	for cl := TypeClass(0); cl < numClasses; cl++ {
		st.Rows[cl] = TypeRow{
			Class:          cl,
			StaticPct:      pct(staticN[cl], staticTot),
			DynamicPct:     pct(dynN[cl], dynTot),
			PredictablePct: pct(predN[cl], dynN[cl]),
		}
	}
	st.OverallPct = pct(predTot, dynTot)
	return st
}

// dominantShare returns the fraction of b's dynamic transitions taken
// by its most frequent successor.
func (p *Profile) dominantShare(b program.BlockID) float64 {
	succs := p.Succs(b)
	if len(succs) == 0 {
		return 1
	}
	var total uint64
	for _, s := range succs {
		total += s.Count
	}
	return float64(succs[0].Count) / float64(total)
}
