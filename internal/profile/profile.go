// Package profile aggregates dynamic basic-block traces into the
// weighted control-flow graph used by the layout algorithms, and
// computes the locality characterizations of Section 4 of the paper:
// static-vs-executed footprint (Table 1), cumulative reference
// concentration (Figure 2), temporal reuse distance (Section 4.1) and
// block-type/predictability classification (Table 2).
package profile

import (
	"sort"

	"repro/internal/program"
	"repro/internal/trace"
)

// Edge is a dynamic transition between two basic blocks.
type Edge struct {
	From, To program.BlockID
}

// Profile is the weighted CFG obtained from one or more traces.
type Profile struct {
	Prog *program.Program
	// BlockCount[b] is the number of times block b executed.
	BlockCount []uint64
	// EdgeCount holds dynamic transition counts, including call edges
	// (call block -> callee entry) and return edges (return block ->
	// continuation).
	EdgeCount map[Edge]uint64
	// DynBlocks and DynInstrs are the dynamic block and instruction
	// totals.
	DynBlocks uint64
	DynInstrs uint64

	succs [][]EdgeWeight // lazily built adjacency, indexed by BlockID
}

// EdgeWeight is one outgoing transition with its dynamic count.
type EdgeWeight struct {
	To    program.BlockID
	Count uint64
}

// New returns an empty profile for the given program image.
func New(p *program.Program) *Profile {
	return &Profile{
		Prog:       p,
		BlockCount: make([]uint64, p.NumBlocks()),
		EdgeCount:  make(map[Edge]uint64),
	}
}

// FromTrace builds a profile from a single trace.
func FromTrace(t *trace.Trace) *Profile {
	p := New(t.Program())
	p.AddTrace(t)
	return p
}

// AddTrace accumulates a trace into the profile.
func (p *Profile) AddTrace(t *trace.Trace) {
	last := program.NoBlock
	prog := p.Prog
	for _, b := range t.Blocks {
		p.BlockCount[b]++
		p.DynInstrs += uint64(prog.Block(b).Size)
		if last != program.NoBlock {
			p.EdgeCount[Edge{last, b}]++
		}
		last = b
	}
	p.DynBlocks += uint64(len(t.Blocks))
	p.succs = nil // invalidate adjacency cache
}

// Weight returns the execution count of block b.
func (p *Profile) Weight(b program.BlockID) uint64 { return p.BlockCount[b] }

// ProcWeight returns the execution count of a procedure's entry block,
// the popularity measure used for seed selection.
func (p *Profile) ProcWeight(id program.ProcID) uint64 {
	return p.BlockCount[p.Prog.Procs[id].Entry]
}

// Succs returns the dynamic successors of block b with their counts,
// sorted by decreasing count (ties broken by BlockID for determinism).
func (p *Profile) Succs(b program.BlockID) []EdgeWeight {
	if p.succs == nil {
		p.buildAdjacency()
	}
	return p.succs[b]
}

func (p *Profile) buildAdjacency() {
	p.succs = make([][]EdgeWeight, p.Prog.NumBlocks())
	for e, c := range p.EdgeCount {
		p.succs[e.From] = append(p.succs[e.From], EdgeWeight{To: e.To, Count: c})
	}
	for _, s := range p.succs {
		sort.Slice(s, func(i, j int) bool {
			if s[i].Count != s[j].Count {
				return s[i].Count > s[j].Count
			}
			return s[i].To < s[j].To
		})
	}
}

// BranchProb returns the probability that execution of block from
// continues at block to, out of all recorded transitions from from.
// Returns 0 if from never executed.
func (p *Profile) BranchProb(from, to program.BlockID) float64 {
	var total, hit uint64
	for _, ew := range p.Succs(from) {
		total += ew.Count
		if ew.To == to {
			hit = ew.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// ExecutedBlocks returns the IDs of all blocks with non-zero count,
// sorted by decreasing count (ties by ID).
func (p *Profile) ExecutedBlocks() []program.BlockID {
	var out []program.BlockID
	for b, c := range p.BlockCount {
		if c > 0 {
			out = append(out, program.BlockID(b))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := p.BlockCount[out[i]], p.BlockCount[out[j]]
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// FootprintStats is Table 1 of the paper: total static program
// elements and the fraction actually executed by the training set.
type FootprintStats struct {
	TotalProcs, ExecProcs   int
	TotalBlocks, ExecBlocks int
	TotalInstrs, ExecInstrs uint64
}

// PctProcs returns the executed-procedure percentage.
func (f FootprintStats) PctProcs() float64 { return pct(uint64(f.ExecProcs), uint64(f.TotalProcs)) }

// PctBlocks returns the executed-block percentage.
func (f FootprintStats) PctBlocks() float64 { return pct(uint64(f.ExecBlocks), uint64(f.TotalBlocks)) }

// PctInstrs returns the executed-instruction percentage.
func (f FootprintStats) PctInstrs() float64 { return pct(f.ExecInstrs, f.TotalInstrs) }

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Footprint computes Table 1.
func (p *Profile) Footprint() FootprintStats {
	var fs FootprintStats
	fs.TotalProcs = p.Prog.NumProcs()
	fs.TotalBlocks = p.Prog.NumBlocks()
	fs.TotalInstrs = p.Prog.NumInstructions()
	procExec := make([]bool, p.Prog.NumProcs())
	for b, c := range p.BlockCount {
		if c == 0 {
			continue
		}
		blk := p.Prog.Block(program.BlockID(b))
		fs.ExecBlocks++
		fs.ExecInstrs += uint64(blk.Size)
		procExec[blk.Proc] = true
	}
	for _, e := range procExec {
		if e {
			fs.ExecProcs++
		}
	}
	return fs
}

// CumulativeRefs computes Figure 2: element i of the result is the
// fraction (0..1) of all dynamic block references captured by the i+1
// most popular static blocks.
func (p *Profile) CumulativeRefs() []float64 {
	blocks := p.ExecutedBlocks()
	out := make([]float64, len(blocks))
	var cum uint64
	for i, b := range blocks {
		cum += p.BlockCount[b]
		out[i] = float64(cum) / float64(p.DynBlocks)
	}
	return out
}

// BlocksForCoverage returns the smallest number of most-popular static
// blocks that capture at least frac (0..1) of dynamic references.
func (p *Profile) BlocksForCoverage(frac float64) int {
	cum := p.CumulativeRefs()
	for i, f := range cum {
		if f >= frac {
			return i + 1
		}
	}
	return len(cum)
}

// PopularSet returns the set of most popular blocks that together
// capture at least frac of the dynamic references (the paper's
// "subset ... which concentrate 75% of the dynamic basic block
// references").
func (p *Profile) PopularSet(frac float64) map[program.BlockID]bool {
	blocks := p.ExecutedBlocks()
	set := make(map[program.BlockID]bool)
	var cum uint64
	target := frac * float64(p.DynBlocks)
	for _, b := range blocks {
		if float64(cum) >= target {
			break
		}
		set[b] = true
		cum += p.BlockCount[b]
	}
	return set
}
