// Package kernel defines the synthetic program image of the database
// kernel: a basic-block-level model of every hot function of the
// engine (buffer manager, access methods, executor operations,
// expression machinery) plus deterministically generated cold code
// standing in for the parser, optimizer, utility and error-handling
// modules of the binary that the training workload never touches
// (Table 1 of the paper: only ~13% of PostgreSQL's static instructions
// are referenced).
//
// Each probe.ID maps to a path of basic blocks through these CFGs; the
// instrumented engine (packages db/...) emits probes, a Session
// translates them into dynamic basic-block traces, and the traces
// validate against the static CFG (calls/returns pair, every
// transition is a static edge).
package kernel

import (
	"math/rand"

	"repro/internal/program"
)

// Image is the built program model plus the probe-path table.
type Image struct {
	Prog *program.Program
	// paths[probe.ID] is the block path emitted for that probe.
	paths [][]program.BlockID
}

// OpsSeedNames lists the Executor operation entry points used by the
// paper's knowledge-based "ops" seed selection (Section 5.1).
var OpsSeedNames = []string{
	"ExecSeqScan", "ExecIndexScan", "ExecNestLoop", "ExecHashJoin",
	"ExecMergeJoin", "ExecSort", "ExecAgg", "ExecGroup",
	"ExecMaterial", "ExecLimit", "ExecResult", "ExecProcNode",
}

// Config sizes the generated cold code.
type Config struct {
	// ColdProcs is the number of never-executed procedures to generate.
	ColdProcs int
	// Seed drives the deterministic cold-code generator.
	Seed int64
}

// DefaultConfig yields a static image whose executed fraction under
// the training workload lands near the paper's Table 1 ratios
// (roughly 20% of procedures, 12% of blocks, 13% of instructions).
func DefaultConfig() Config {
	return Config{ColdProcs: 110, Seed: 19991} // ICPP 1999
}

// New builds the kernel image.
func New(cfg Config) *Image {
	b := program.NewBuilder()
	defineHotProcs(b)
	defineColdProcs(b, cfg)
	img := &Image{Prog: b.MustBuild()}
	img.buildPaths()
	return img
}

// leaf declares a two-block leaf procedure: body + return.
func leaf(b *program.Builder, name, module string, bodySize, retSize int) {
	p := b.Proc(name, module)
	p.Fall("entry", bodySize)
	p.Ret("ret", retSize)
}

// defineHotProcs declares every instrumented kernel function. Block
// sizes approximate compiled code (average close to the paper's ~4.7
// instructions per block); declaration order models link order by
// module, which is the paper's "orig" layout.
func defineHotProcs(b *program.Builder) {
	// --- bufmgr module ---
	// The buffer-table hash lookup is inlined into ReadBuffer's entry
	// (as the compiler inlines it); its probe maps to an empty path.
	rb := b.Proc("ReadBuffer", "bufmgr")
	rb.Fall("entry", 14)
	rb.Cond("check", 4, "miss")
	rb.Ret("hit", 7)
	rb.Call("miss", 5, "StrategyGetBuffer")
	rb.Call("read", 7, "smgrread")
	rb.Ret("fill", 11)

	sgb := b.Proc("StrategyGetBuffer", "bufmgr")
	sgb.Fall("entry", 7)
	sgb.Cond("loop", 5, "take")
	sgb.Jump("next", 3, "loop")
	sgb.Ret("take", 8)

	// --- smgr module ---
	leaf(b, "smgrread", "smgr", 12, 5)

	// --- heap access module ---
	// heap_deform (tuple decoding) is inlined into heap_getnext.tup and
	// heap_fetch.cont; its probe maps to an empty path.
	hgn := b.Proc("heap_getnext", "heap")
	hgn.Cond("entry", 7, "check")
	hgn.Cond("slot", 5, "nextpage")
	hgn.Fall("tup", 16)
	hgn.Ret("emit", 5)
	hgn.Jump("nextpage", 4, "check")
	hgn.Cond("check", 5, "eof")
	hgn.Call("read", 7, "ReadBuffer")
	hgn.Jump("cont", 5, "slot")
	hgn.Ret("eof", 3)

	hf := b.Proc("heap_fetch", "heap")
	hf.Call("entry", 9, "ReadBuffer")
	hf.Fall("cont", 15)
	hf.Ret("emit", 5)

	// --- nbtree module ---
	bts := b.Proc("bt_search", "nbtree")
	bts.Call("entry", 9, "ReadBuffer")
	bts.Fall("meta", 4)
	bts.Call("level", 5, "ReadBuffer")
	bts.Cond("cont", 10, "done")
	bts.Jump("descend", 5, "level")
	bts.Ret("done", 7)

	btn := b.Proc("bt_next", "nbtree")
	btn.Cond("entry", 4, "eof")
	btn.Call("read", 6, "ReadBuffer")
	btn.Cond("cont", 5, "step")
	btn.Ret("emit", 8)
	btn.Cond("step", 5, "seteof")
	btn.Jump("loop", 3, "entry")
	btn.Fall("seteof", 2)
	btn.Ret("eof", 3)

	// --- hash access module ---
	// The hash function is inlined into hash_search (and the hash-join
	// sites); its probe maps to an empty path.
	hsr := b.Proc("hash_search", "hash")
	hsr.Fall("entry", 11)
	hsr.Ret("cont", 5)

	hsn := b.Proc("hash_next", "hash")
	hsn.Cond("entry", 4, "eof")
	hsn.Call("read", 6, "ReadBuffer")
	hsn.Fall("cont", 4)
	hsn.Cond("check", 3, "chain")
	hsn.Cond("cmp", 5, "loop")
	hsn.Ret("emit", 6)
	hsn.Jump("loop", 2, "check")
	hsn.Cond("chain", 4, "seteof")
	hsn.Jump("follow", 3, "entry")
	hsn.Fall("seteof", 2)
	hsn.Ret("eof", 3)

	// --- adt module: operator functions (fmgr targets) ---
	leaf(b, "btint4cmp", "adt", 7, 3)
	leaf(b, "btfloat8cmp", "adt", 7, 3)
	leaf(b, "bttextcmp", "adt", 12, 3)
	leaf(b, "btdatecmp", "adt", 7, 3)
	leaf(b, "int4arith", "adt", 6, 3)
	leaf(b, "boolop", "adt", 4, 3)
	leaf(b, "textlike", "adt", 16, 5)

	// --- executor module ---
	epn := b.Proc("ExecProcNode", "executor")
	epn.CallIndirect("entry", 8)
	epn.Ret("ret", 4)

	eq := b.Proc("ExecQual", "executor")
	eq.Fall("entry", 6)
	eq.Cond("loop", 6, "pass")
	eq.Call("clause", 6, "ExecEvalExpr")
	eq.Cond("ccont", 6, "fail")
	eq.Jump("loopb", 4, "loop")
	eq.Ret("pass", 4)
	eq.Ret("fail", 4)

	eee := b.Proc("ExecEvalExpr", "executor")
	eee.Cond("entry", 6, "leaf")
	eee.Call("op1", 6, "ExecEvalExpr")
	eee.Cond("op1c", 4, "apply0")
	eee.Call("op2", 6, "ExecEvalExpr")
	eee.Fall("op2c", 4)
	eee.CallIndirect("apply", 8)
	eee.Ret("ret", 6)
	eee.Jump("apply0", 4, "apply")
	eee.Cond("leaf", 4, "cnst")
	eee.Ret("var", 6)
	eee.Ret("cnst", 4)

	prj := b.Proc("ExecProject", "executor")
	prj.Fall("entry", 6)
	prj.Cond("loop", 4, "done")
	prj.Call("col", 6, "ExecEvalExpr")
	prj.Jump("colc", 4, "loop")
	prj.Ret("done", 6)

	tc := b.Proc("tupcmp", "executor")
	tc.Fall("entry", 6)
	tc.Cond("loop", 4, "done")
	tc.CallIndirect("col", 6)
	tc.Jump("colc", 4, "loop")
	tc.Ret("done", 6)

	qs := b.Proc("qsort", "utils")
	qs.Fall("entry", 8)
	qs.Cond("loop", 6, "done")
	qs.CallIndirect("cmp", 6)
	qs.Jump("cmpc", 4, "loop")
	qs.Ret("done", 6)

	res := b.Proc("ExecResult", "executor")
	res.Fall("entry", 4)
	res.Call("call", 6, "ExecProcNode")
	res.Cond("cont", 4, "eof")
	res.Call("proj", 6, "ExecProject")
	res.Ret("ret", 4)
	res.Ret("eof", 4)

	ss := b.Proc("ExecSeqScan", "executor")
	ss.Fall("entry", 6)
	ss.CallIndirect("loop", 8)
	ss.Cond("cont", 6, "eof")
	ss.Cond("qualpt", 4, "emitd")
	ss.Call("qual", 6, "ExecQual")
	ss.Cond("qcont", 6, "next")
	ss.Ret("emit", 6)
	ss.Jump("next", 4, "loop")
	ss.Jump("emitd", 4, "emit")
	ss.Ret("eof", 4)

	ix := b.Proc("ExecIndexScan", "executor")
	ix.Cond("entry", 6, "init")
	ix.CallIndirect("loop", 6)
	ix.Cond("ncont", 6, "eof")
	ix.Call("fetch", 6, "heap_fetch")
	ix.Cond("fcont", 4, "emitd")
	ix.Call("qual", 6, "ExecQual")
	ix.Cond("qcont", 6, "loopb")
	ix.Ret("emit", 8)
	ix.Jump("loopb", 4, "loop")
	ix.Jump("emitd", 4, "emit")
	ix.Ret("eof", 6)
	ix.CallIndirect("init", 8)
	ix.Jump("icont", 4, "loop")

	nl := b.Proc("ExecNestLoop", "executor")
	nl.Cond("entry", 8, "outer")
	nl.CallIndirect("inner", 6)
	nl.Cond("icont", 6, "rescan")
	nl.Cond("fetch", 4, "join")
	nl.Call("hfetch", 6, "heap_fetch")
	nl.Fall("hcont", 4)
	nl.Cond("join", 6, "emitd")
	nl.Call("qual", 6, "ExecQual")
	nl.Cond("qcont", 6, "next")
	nl.Ret("emit", 8)
	nl.Jump("next", 4, "inner")
	nl.Jump("emitd", 4, "emit")
	nl.Fall("rescan", 6)
	nl.Call("outer", 6, "ExecProcNode")
	nl.Cond("ocont", 6, "eof")
	nl.Cond("ostart", 4, "back2")
	nl.CallIndirect("istart", 6)
	nl.Jump("icont2", 4, "inner")
	nl.Jump("back2", 4, "inner")
	nl.Ret("eof", 6)

	hj := b.Proc("ExecHashJoin", "executor")
	hj.Cond("entry", 8, "resume")
	hj.Fall("bentry", 4)
	hj.Call("bloop", 6, "ExecProcNode")
	hj.Cond("bcont", 6, "bdone")
	hj.Fall("bins", 12)
	hj.Jump("binsc", 8, "bloop")
	hj.Fall("bdone", 6)
	hj.Call("outer", 6, "ExecProcNode")
	hj.Cond("ocont", 6, "eof")
	hj.Fall("pcall", 12)
	hj.Fall("pcont", 8)
	hj.Cond("cand", 6, "outerj")
	hj.CallIndirect("ccall", 6)
	hj.Cond("ccont", 6, "cnext")
	hj.Cond("qualpt", 4, "emitd")
	hj.Call("qual", 6, "ExecQual")
	hj.Cond("qcont", 6, "cnextj")
	hj.Ret("emit", 8)
	hj.Jump("cnextj", 4, "cand")
	hj.Jump("emitd", 4, "emit")
	hj.Jump("cnext", 4, "cand")
	hj.Jump("outerj", 4, "outer")
	hj.Ret("eof", 6)
	hj.Jump("resume", 6, "cand")

	mj := b.Proc("ExecMergeJoin", "executor")
	mj.Fall("entry", 8)
	mj.Cond("d1", 6, "outeradv")
	mj.Cond("d2", 6, "inneradv")
	mj.Cond("d3", 6, "cmploc")
	mj.Cond("d4", 4, "qualloc")
	mj.Cond("d5", 4, "emitloc")
	mj.Ret("eofb", 6)
	mj.Call("outeradv", 6, "ExecProcNode")
	mj.Jump("oacont", 4, "d1")
	mj.Call("inneradv", 6, "ExecProcNode")
	mj.Jump("iacont", 4, "d1")
	mj.CallIndirect("cmploc", 6)
	mj.Jump("ccont", 6, "d1")
	mj.Call("qualloc", 6, "ExecQual")
	mj.Jump("qcont", 4, "d1")
	mj.Ret("emitloc", 8)

	srt := b.Proc("ExecSort", "executor")
	srt.Cond("entry", 8, "drain")
	srt.Call("lload", 6, "ExecProcNode")
	srt.Cond("lcont", 6, "lsort")
	srt.Jump("lback", 4, "lload")
	srt.Call("lsort", 8, "qsort")
	srt.Fall("scont", 6)
	srt.Cond("drain", 6, "seof")
	srt.Ret("semit", 8)
	srt.Ret("seof", 4)

	ag := b.Proc("ExecAgg", "executor")
	ag.Cond("entry", 8, "eof")
	ag.Call("loop", 6, "ExecProcNode")
	ag.Cond("cont", 6, "emit")
	ag.Cond("aggs", 4, "cstar")
	ag.Call("acall", 6, "ExecEvalExpr")
	ag.Fall("acont", 8)
	ag.Cond("anext", 4, "loopb")
	ag.Jump("aback", 2, "aggs")
	ag.Jump("loopb", 4, "loop")
	ag.Jump("cstar", 6, "anext")
	ag.Ret("emit", 10)
	ag.Ret("eof", 4)

	gr := b.Proc("ExecGroup", "executor")
	gr.Cond("entry", 6, "geof")
	gr.Cond("pend", 4, "accjmp")
	gr.Call("fetch1", 6, "ExecProcNode")
	gr.Cond("fcont", 4, "fempty")
	gr.Fall("accjmp", 2)
	gr.Cond("aggs", 4, "cstar")
	gr.Call("acall", 6, "ExecEvalExpr")
	gr.Fall("acont", 6)
	gr.Cond("anext", 4, "adone")
	gr.Jump("aback", 2, "aggs")
	gr.Fall("adone", 4)
	gr.Call("fetch2", 6, "ExecProcNode")
	gr.Cond("f2cont", 4, "flast")
	gr.Call("cmp", 6, "tupcmp")
	gr.Cond("ccont", 6, "boundary")
	gr.Jump("same", 4, "aggs")
	gr.Fall("flast", 4)
	gr.Fall("boundary", 6)
	gr.Ret("emit", 10)
	gr.Jump("cstar", 4, "anext")
	gr.Fall("fempty", 4)
	gr.Ret("geof", 4)

	mat := b.Proc("ExecMaterial", "executor")
	mat.Cond("entry", 6, "drain")
	mat.Call("mload", 6, "ExecProcNode")
	mat.Cond("mcont", 6, "mdone")
	mat.Jump("mback", 4, "mload")
	mat.Fall("mdone", 4)
	mat.Cond("drain", 6, "meof")
	mat.Ret("memit", 6)
	mat.Ret("meof", 4)

	lim := b.Proc("ExecLimit", "executor")
	lim.Cond("entry", 6, "leof")
	lim.Call("lcall", 6, "ExecProcNode")
	lim.Cond("lcont", 6, "ldrain")
	lim.Ret("lemit", 6)
	lim.Fall("ldrain", 2)
	lim.Ret("leof", 4)
}

// Cold-code module profile: name, proc count weight and typical sizes,
// loosely mirroring the bulk of a DBMS binary the DSS training set
// never executes (parser, optimizer, utility commands, error paths).
var coldModules = []struct {
	name   string
	weight int
}{
	{"parser", 5},
	{"optimizer", 5},
	{"commands", 4},
	{"catalog", 3},
	{"libpq", 3},
	{"utils", 4},
	{"elog", 2},
	{"tcop", 2},
}

// defineColdProcs appends cfg.ColdProcs never-executed procedures with
// plausible CFG shapes. The generator is deterministic in cfg.Seed.
func defineColdProcs(b *program.Builder, cfg Config) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var weighted []string
	for _, m := range coldModules {
		for i := 0; i < m.weight; i++ {
			weighted = append(weighted, m.name)
		}
	}
	names := map[string]int{}
	for i := 0; i < cfg.ColdProcs; i++ {
		module := weighted[rng.Intn(len(weighted))]
		names[module]++
		p := b.ColdProc(coldProcName(module, names[module]), module)
		genColdBody(p, rng)
	}
}

var coldStems = map[string][]string{
	"parser":    {"transformExpr", "parse_node", "scan_ident", "make_op", "gram_reduce"},
	"optimizer": {"planner_path", "join_cost", "index_paths", "prune_plan", "restrict_info"},
	"commands":  {"vacuum_rel", "copy_from", "create_index_cmd", "alter_table", "analyze_rel"},
	"catalog":   {"heap_create", "index_build_cat", "pg_operator_lookup", "aclcheck"},
	"libpq":     {"pq_putbytes", "pq_flush", "auth_handshake", "be_recv"},
	"utils":     {"elog_format", "memctx_reset", "dt_parse", "numeric_out", "guc_lookup"},
	"elog":      {"errstart", "errfinish", "abort_tx"},
	"tcop":      {"postgres_main", "exec_simple", "sigterm_handler"},
}

func coldProcName(module string, n int) string {
	stems := coldStems[module]
	stem := stems[n%len(stems)]
	return stem + "_" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// genColdBody emits a plausible procedure body: straight-line stretches
// with conditional branches to later labels, occasional early returns,
// ending in a return block. 8–26 blocks, 2–9 instructions each.
func genColdBody(p *program.ProcBuilder, rng *rand.Rand) {
	n := 6 + rng.Intn(14)
	labels := make([]string, n)
	for i := range labels {
		labels[i] = "b" + itoa(i)
	}
	for i := 0; i < n-1; i++ {
		size := 2 + rng.Intn(11)
		switch r := rng.Intn(10); {
		case r < 4 && i+2 < n:
			// Conditional branch to a random later block.
			tgt := i + 2 + rng.Intn(n-i-2)
			p.Cond(labels[i], size, labels[tgt])
		case r < 5:
			// Early return (error path).
			p.Ret(labels[i], size)
			// A return mid-procedure needs a following entry point that
			// is a branch target; ensure the next block is reachable by
			// making the previous cond point at it — simplest is to
			// continue; unreachable cold blocks are fine in a binary.
		case r < 6 && i > 1:
			// Backward jump (cold loop).
			p.Jump(labels[i], size, labels[rng.Intn(i)])
		default:
			p.Fall(labels[i], size)
		}
	}
	p.Ret(labels[n-1], 3+rng.Intn(5))
}
