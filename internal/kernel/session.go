package kernel

import (
	"repro/internal/db/probe"
	"repro/internal/trace"
)

// Session translates probe events from the instrumented engine into a
// dynamic basic-block trace — the role ATOM instrumentation plays in
// the paper. One session corresponds to one traced execution.
type Session struct {
	img *Image
	rec *trace.Recorder
}

var _ probe.Tracer = (*Session)(nil)

// NewSession starts a trace over the image. With validate set, every
// dynamic transition is checked against the static CFG (used by tests;
// cheap enough for the experiments too).
func (img *Image) NewSession(validate bool) *Session {
	t := trace.New(img.Prog)
	return &Session{img: img, rec: trace.NewRecorder(t, validate)}
}

// Emit implements probe.Tracer.
func (s *Session) Emit(id probe.ID) {
	s.rec.Path(s.img.paths[id])
}

// Mark labels the current trace position (query boundaries).
func (s *Session) Mark(label string) { s.rec.Mark(label) }

// Trace returns the recorded trace.
func (s *Session) Trace() *trace.Trace { return s.rec.Trace() }

// Err returns the first validation error, if any.
func (s *Session) Err() error { return s.rec.Err() }
