package kernel

import (
	"repro/internal/db/probe"
	"repro/internal/program"
)

// buildPaths fills the probe → block-path table. Each entry lists the
// basic blocks executed when the corresponding instrumentation point
// fires; the sequences are constructed so that consecutive probe
// emissions always form legal static control flow (validated by
// TestAllQueryShapesValidate and the trace recorder).
func (img *Image) buildPaths() {
	img.paths = make([][]program.BlockID, probe.NumProbes)
	p := img.Prog
	at := func(id probe.ID, names ...string) {
		path := make([]program.BlockID, len(names))
		for i, n := range names {
			path[i] = p.MustBlock(n)
		}
		img.paths[id] = path
	}

	// ReadBuffer and the buffer substrate.
	at(probe.BufGetEnter, "ReadBuffer.entry")
	at(probe.BufTableLookup) // inlined into ReadBuffer.entry
	at(probe.BufGetHit, "ReadBuffer.check", "ReadBuffer.hit")
	at(probe.BufGetMiss, "ReadBuffer.check", "ReadBuffer.miss")
	at(probe.BufClockEnter, "StrategyGetBuffer.entry")
	at(probe.BufClockSkip, "StrategyGetBuffer.loop", "StrategyGetBuffer.next")
	at(probe.BufClockTake, "StrategyGetBuffer.loop", "StrategyGetBuffer.take")
	at(probe.BufGetRead, "ReadBuffer.read")
	at(probe.SmgrRead, "smgrread.entry", "smgrread.ret")
	at(probe.BufGetFill, "ReadBuffer.fill")

	// heap_getnext.
	at(probe.HeapGetNextEnter, "heap_getnext.entry")
	at(probe.HeapGetNextPage, "heap_getnext.check", "heap_getnext.read")
	at(probe.HeapGetNextPageCont, "heap_getnext.cont")
	at(probe.HeapGetNextTuple, "heap_getnext.slot", "heap_getnext.tup")
	at(probe.HeapDeform) // inlined into heap_getnext.tup / heap_fetch.cont
	at(probe.HeapGetNextEmit, "heap_getnext.emit")
	at(probe.HeapGetNextNewPage, "heap_getnext.slot", "heap_getnext.nextpage")
	at(probe.HeapGetNextEOF, "heap_getnext.check", "heap_getnext.eof")

	// heap_fetch.
	at(probe.HeapFetchEnter, "heap_fetch.entry")
	at(probe.HeapFetchCont, "heap_fetch.cont")
	at(probe.HeapFetchEmit, "heap_fetch.emit")

	// bt_search.
	at(probe.BtSearchEnter, "bt_search.entry")
	at(probe.BtSearchMeta, "bt_search.meta")
	at(probe.BtSearchLevel, "bt_search.level")
	at(probe.BtSearchCont, "bt_search.cont", "bt_search.descend")
	at(probe.BtSearchDone, "bt_search.cont", "bt_search.done")

	// bt_next.
	at(probe.BtNextEnter, "bt_next.entry", "bt_next.read")
	at(probe.BtNextEmit, "bt_next.cont", "bt_next.emit")
	at(probe.BtNextStep, "bt_next.cont", "bt_next.step", "bt_next.loop")
	at(probe.BtNextEOF, "bt_next.cont", "bt_next.step", "bt_next.seteof", "bt_next.eof")
	at(probe.BtNextDone, "bt_next.entry", "bt_next.eof")

	// hash_search / hash_next.
	at(probe.HashSearchEnter, "hash_search.entry")
	at(probe.HashFunc) // inlined into its call sites
	at(probe.HashSearchCont, "hash_search.cont")
	at(probe.HashNextEnter, "hash_next.entry", "hash_next.read")
	at(probe.HashNextCont, "hash_next.cont")
	at(probe.HashNextCmp, "hash_next.check", "hash_next.cmp", "hash_next.loop")
	at(probe.HashNextEmit, "hash_next.check", "hash_next.cmp", "hash_next.emit")
	at(probe.HashNextChain, "hash_next.check", "hash_next.chain", "hash_next.follow")
	at(probe.HashNextEOF, "hash_next.check", "hash_next.chain", "hash_next.seteof", "hash_next.eof")
	at(probe.HashNextDone, "hash_next.entry", "hash_next.eof")

	// ExecProcNode.
	at(probe.ExecProcEnter, "ExecProcNode.entry")
	at(probe.ExecProcExit, "ExecProcNode.ret")

	// ExecQual.
	at(probe.ExecQualEnter, "ExecQual.entry")
	at(probe.ExecQualExpr, "ExecQual.loop", "ExecQual.clause")
	at(probe.ExecQualCont, "ExecQual.ccont", "ExecQual.loopb")
	at(probe.ExecQualPass, "ExecQual.loop", "ExecQual.pass")
	at(probe.ExecQualFail, "ExecQual.ccont", "ExecQual.fail")

	// ExecEvalExpr.
	at(probe.EvalExprVar, "ExecEvalExpr.entry", "ExecEvalExpr.leaf", "ExecEvalExpr.var")
	at(probe.EvalExprConst, "ExecEvalExpr.entry", "ExecEvalExpr.leaf", "ExecEvalExpr.cnst")
	at(probe.EvalExprOpCall, "ExecEvalExpr.entry", "ExecEvalExpr.op1")
	at(probe.EvalExprOp2, "ExecEvalExpr.op1c", "ExecEvalExpr.op2")
	at(probe.EvalExprOpCont, "ExecEvalExpr.op2c", "ExecEvalExpr.apply")
	at(probe.EvalExprOp1Only, "ExecEvalExpr.op1c", "ExecEvalExpr.apply0", "ExecEvalExpr.apply")
	at(probe.EvalExprRet, "ExecEvalExpr.ret")

	// Operator functions.
	at(probe.CmpInt, "btint4cmp.entry", "btint4cmp.ret")
	at(probe.CmpFlt, "btfloat8cmp.entry", "btfloat8cmp.ret")
	at(probe.CmpStr, "bttextcmp.entry", "bttextcmp.ret")
	at(probe.CmpDate, "btdatecmp.entry", "btdatecmp.ret")
	at(probe.ArithOp, "int4arith.entry", "int4arith.ret")
	at(probe.BoolOp, "boolop.entry", "boolop.ret")
	at(probe.LikeOp, "textlike.entry", "textlike.ret")

	// ExecProject.
	at(probe.ProjectEnter, "ExecProject.entry")
	at(probe.ProjectCol, "ExecProject.loop", "ExecProject.col")
	at(probe.ProjectColCont, "ExecProject.colc")
	at(probe.ProjectDone, "ExecProject.loop", "ExecProject.done")

	// ExecResult.
	at(probe.ResultCall, "ExecResult.entry", "ExecResult.call")
	at(probe.ResultCont, "ExecResult.cont")
	at(probe.ResultProject, "ExecResult.proj")
	at(probe.ResultDone, "ExecResult.ret")
	at(probe.ResultEOF, "ExecResult.eof")

	// ExecSeqScan.
	at(probe.SeqScanEnter, "ExecSeqScan.entry")
	at(probe.SeqScanCall, "ExecSeqScan.loop")
	at(probe.SeqScanCont, "ExecSeqScan.cont")
	at(probe.SeqScanQualCall, "ExecSeqScan.qualpt", "ExecSeqScan.qual")
	at(probe.SeqScanQualCont, "ExecSeqScan.qcont")
	at(probe.SeqScanEmit, "ExecSeqScan.emit")
	at(probe.SeqScanEmitDirect, "ExecSeqScan.qualpt", "ExecSeqScan.emitd", "ExecSeqScan.emit")
	at(probe.SeqScanNext, "ExecSeqScan.next")
	at(probe.SeqScanEOF, "ExecSeqScan.eof")

	// ExecIndexScan.
	at(probe.IdxScanEnter, "ExecIndexScan.entry")
	at(probe.IdxScanInit, "ExecIndexScan.init")
	at(probe.IdxScanInitCont, "ExecIndexScan.icont")
	at(probe.IdxScanNextCall, "ExecIndexScan.loop")
	at(probe.IdxScanNextCont, "ExecIndexScan.ncont")
	at(probe.IdxScanFetch, "ExecIndexScan.fetch")
	at(probe.IdxScanCont, "ExecIndexScan.fcont")
	at(probe.IdxScanQualCall, "ExecIndexScan.qual")
	at(probe.IdxScanQualCont, "ExecIndexScan.qcont")
	at(probe.IdxScanEmit, "ExecIndexScan.emit")
	at(probe.IdxScanEmitDirect, "ExecIndexScan.emitd", "ExecIndexScan.emit")
	at(probe.IdxScanNext, "ExecIndexScan.loopb")
	at(probe.IdxScanEOF, "ExecIndexScan.eof")

	// ExecNestLoop.
	at(probe.NLEnter, "ExecNestLoop.entry")
	at(probe.NLOuterCall, "ExecNestLoop.outer")
	at(probe.NLOuterCont, "ExecNestLoop.ocont")
	at(probe.NLOuterOK, "ExecNestLoop.ostart", "ExecNestLoop.back2")
	at(probe.NLStartScan, "ExecNestLoop.ostart", "ExecNestLoop.istart")
	at(probe.NLStartCont, "ExecNestLoop.icont2")
	at(probe.NLInnerCall, "ExecNestLoop.inner")
	at(probe.NLInnerCont, "ExecNestLoop.icont")
	at(probe.NLJoin, "ExecNestLoop.fetch", "ExecNestLoop.join")
	at(probe.NLFetch, "ExecNestLoop.fetch", "ExecNestLoop.hfetch")
	at(probe.NLFetchCont, "ExecNestLoop.hcont", "ExecNestLoop.join")
	at(probe.NLRescan, "ExecNestLoop.rescan")
	at(probe.NLQualCall, "ExecNestLoop.qual")
	at(probe.NLQualCont, "ExecNestLoop.qcont")
	at(probe.NLNext, "ExecNestLoop.next")
	at(probe.NLEmit, "ExecNestLoop.emit")
	at(probe.NLEmitDirect, "ExecNestLoop.emitd", "ExecNestLoop.emit")
	at(probe.NLEOF, "ExecNestLoop.eof")

	// ExecHashJoin.
	at(probe.HJEnter, "ExecHashJoin.entry")
	at(probe.HJResume, "ExecHashJoin.resume")
	at(probe.HJBuildStart, "ExecHashJoin.bentry")
	at(probe.HJBuildCall, "ExecHashJoin.bloop")
	at(probe.HJBuildCont, "ExecHashJoin.bcont")
	at(probe.HJBuildInsert, "ExecHashJoin.bins")
	at(probe.HJBuildInsCont, "ExecHashJoin.binsc")
	at(probe.HJBuildDone, "ExecHashJoin.bdone")
	at(probe.HJOuterCall, "ExecHashJoin.outer")
	at(probe.HJOuterCont, "ExecHashJoin.ocont")
	at(probe.HJProbeCall, "ExecHashJoin.pcall")
	at(probe.HJProbeCont, "ExecHashJoin.pcont")
	at(probe.HJCandCall, "ExecHashJoin.cand", "ExecHashJoin.ccall")
	at(probe.HJCandCont, "ExecHashJoin.ccont")
	at(probe.HJCandMiss, "ExecHashJoin.cnext")
	at(probe.HJCandNext, "ExecHashJoin.cnextj")
	at(probe.HJBucketDone, "ExecHashJoin.cand", "ExecHashJoin.outerj")
	at(probe.HJQualCall, "ExecHashJoin.qualpt", "ExecHashJoin.qual")
	at(probe.HJQualCont, "ExecHashJoin.qcont")
	at(probe.HJMatch, "ExecHashJoin.emit")
	at(probe.HJMatchDirect, "ExecHashJoin.qualpt", "ExecHashJoin.emitd", "ExecHashJoin.emit")
	at(probe.HJEOF, "ExecHashJoin.eof")

	// ExecMergeJoin (dispatch-style CFG).
	at(probe.MJEnter, "ExecMergeJoin.entry")
	at(probe.MJOuterCall, "ExecMergeJoin.d1", "ExecMergeJoin.outeradv")
	at(probe.MJOuterCont, "ExecMergeJoin.oacont")
	at(probe.MJInnerCall, "ExecMergeJoin.d1", "ExecMergeJoin.d2", "ExecMergeJoin.inneradv")
	at(probe.MJInnerCont, "ExecMergeJoin.iacont")
	at(probe.MJCmpCall, "ExecMergeJoin.d1", "ExecMergeJoin.d2", "ExecMergeJoin.d3", "ExecMergeJoin.cmploc")
	at(probe.MJCmpCont, "ExecMergeJoin.ccont")
	at(probe.MJQualCall, "ExecMergeJoin.d1", "ExecMergeJoin.d2", "ExecMergeJoin.d3",
		"ExecMergeJoin.d4", "ExecMergeJoin.qualloc")
	at(probe.MJQualCont, "ExecMergeJoin.qcont")
	at(probe.MJEmit, "ExecMergeJoin.d1", "ExecMergeJoin.d2", "ExecMergeJoin.d3",
		"ExecMergeJoin.d4", "ExecMergeJoin.d5", "ExecMergeJoin.emitloc")
	at(probe.MJEOF, "ExecMergeJoin.d1", "ExecMergeJoin.d2", "ExecMergeJoin.d3",
		"ExecMergeJoin.d4", "ExecMergeJoin.d5", "ExecMergeJoin.eofb")

	// ExecSort and qsort.
	at(probe.SortEnter, "ExecSort.entry")
	at(probe.SortLoadCall, "ExecSort.lload")
	at(probe.SortLoadCont, "ExecSort.lcont")
	at(probe.SortLoadOK, "ExecSort.lback")
	at(probe.SortSortCall, "ExecSort.lsort")
	at(probe.QsortEnter, "qsort.entry")
	at(probe.QsortCmpCall, "qsort.loop", "qsort.cmp")
	at(probe.QsortCmpCont, "qsort.cmpc")
	at(probe.QsortRet, "qsort.loop", "qsort.done")
	at(probe.SortSortCont, "ExecSort.scont")
	at(probe.SortEmit, "ExecSort.drain", "ExecSort.semit")
	at(probe.SortEOF, "ExecSort.drain", "ExecSort.seof")

	// tupcmp.
	at(probe.TupCmpEnter, "tupcmp.entry")
	at(probe.TupCmpCol, "tupcmp.loop", "tupcmp.col")
	at(probe.TupCmpColCont, "tupcmp.colc")
	at(probe.TupCmpDone, "tupcmp.loop", "tupcmp.done")

	// ExecAgg.
	at(probe.AggEnter, "ExecAgg.entry")
	at(probe.AggChildCall, "ExecAgg.loop")
	at(probe.AggChildCont, "ExecAgg.cont")
	at(probe.AggAdvance, "ExecAgg.aggs", "ExecAgg.acall")
	at(probe.AggAdvanceCont, "ExecAgg.acont", "ExecAgg.anext", "ExecAgg.aback")
	at(probe.AggAdvanceLast, "ExecAgg.acont", "ExecAgg.anext", "ExecAgg.loopb")
	at(probe.AggCountStar, "ExecAgg.aggs", "ExecAgg.cstar", "ExecAgg.anext", "ExecAgg.aback")
	at(probe.AggCountStarLast, "ExecAgg.aggs", "ExecAgg.cstar", "ExecAgg.anext", "ExecAgg.loopb")
	at(probe.AggEmit, "ExecAgg.emit")
	at(probe.AggEOF, "ExecAgg.eof")

	// ExecGroup.
	at(probe.GrpEnter, "ExecGroup.entry")
	at(probe.GrpFirstCall, "ExecGroup.pend", "ExecGroup.fetch1")
	at(probe.GrpFirstCont, "ExecGroup.fcont")
	at(probe.GrpFirstEOF, "ExecGroup.fempty", "ExecGroup.geof")
	at(probe.GrpAccum, "ExecGroup.accjmp")
	at(probe.GrpAccumPend, "ExecGroup.pend", "ExecGroup.accjmp")
	at(probe.GrpAdvance, "ExecGroup.aggs", "ExecGroup.acall")
	at(probe.GrpAdvanceCont, "ExecGroup.acont", "ExecGroup.anext", "ExecGroup.aback")
	at(probe.GrpAdvanceLast, "ExecGroup.acont", "ExecGroup.anext", "ExecGroup.adone")
	at(probe.GrpCountStar, "ExecGroup.aggs", "ExecGroup.cstar", "ExecGroup.anext", "ExecGroup.aback")
	at(probe.GrpCountStarLast, "ExecGroup.aggs", "ExecGroup.cstar", "ExecGroup.anext", "ExecGroup.adone")
	at(probe.GrpChildCall, "ExecGroup.fetch2")
	at(probe.GrpChildCont, "ExecGroup.f2cont")
	at(probe.GrpCmpCall, "ExecGroup.cmp")
	at(probe.GrpCmpCont, "ExecGroup.ccont")
	at(probe.GrpSame, "ExecGroup.same")
	at(probe.GrpEmit, "ExecGroup.boundary", "ExecGroup.emit")
	at(probe.GrpDrain, "ExecGroup.flast", "ExecGroup.boundary", "ExecGroup.emit")
	at(probe.GrpEOF, "ExecGroup.geof")

	// ExecMaterial.
	at(probe.MatEnter, "ExecMaterial.entry")
	at(probe.MatChildCall, "ExecMaterial.mload")
	at(probe.MatChildCont, "ExecMaterial.mcont")
	at(probe.MatLoadOK, "ExecMaterial.mback")
	at(probe.MatLoadDone, "ExecMaterial.mdone")
	at(probe.MatEmit, "ExecMaterial.drain", "ExecMaterial.memit")
	at(probe.MatEOF, "ExecMaterial.drain", "ExecMaterial.meof")

	// ExecLimit.
	at(probe.LimEnter, "ExecLimit.entry")
	at(probe.LimChildCall, "ExecLimit.lcall")
	at(probe.LimChildCont, "ExecLimit.lcont")
	at(probe.LimEmit, "ExecLimit.lemit")
	at(probe.LimDrained, "ExecLimit.ldrain", "ExecLimit.leof")
	at(probe.LimEOF, "ExecLimit.leof")
}

// Path returns the block path for a probe (exposed for tests).
func (img *Image) Path(id probe.ID) []program.BlockID { return img.paths[id] }
