package kernel

import (
	"testing"

	"repro/internal/db/access"
	"repro/internal/db/buffer"
	"repro/internal/db/catalog"
	"repro/internal/db/executor"
	"repro/internal/db/probe"
	"repro/internal/db/storage"
	"repro/internal/db/value"
	"repro/internal/program"
)

func TestImageBuilds(t *testing.T) {
	img := New(DefaultConfig())
	if err := img.Prog.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	t.Logf("image: %d procs, %d blocks, %d instrs",
		img.Prog.NumProcs(), img.Prog.NumBlocks(), img.Prog.NumInstructions())
}

func TestEveryProbeHasAPath(t *testing.T) {
	img := New(Config{ColdProcs: 5, Seed: 1})
	for id := probe.ID(0); id < probe.NumProbes; id++ {
		if len(img.Path(id)) == 0 && id != probe.BufTableLookup && id != probe.HeapDeform && id != probe.HashFunc {
			t.Errorf("probe %d has no path", id)
		}
	}
}

// Every probe path must be internally consistent: consecutive blocks
// within one path must form legal static transitions (call edges jump
// to callee entries, which single paths never do, so within a path all
// transitions are fall-through/branch edges).
func TestProbePathsAreStaticChains(t *testing.T) {
	img := New(Config{ColdProcs: 5, Seed: 1})
	for id := probe.ID(0); id < probe.NumProbes; id++ {
		path := img.Path(id)
		for i := 1; i < len(path); i++ {
			if !img.Prog.ValidEdge(path[i-1], path[i]) {
				t.Errorf("probe %d: illegal edge %s -> %s", id,
					img.Prog.Block(path[i-1]).Name, img.Prog.Block(path[i]).Name)
			}
		}
	}
}

func TestOpsSeedNamesExist(t *testing.T) {
	img := New(Config{ColdProcs: 5, Seed: 1})
	for _, name := range OpsSeedNames {
		if _, ok := img.Prog.ProcByName(name); !ok {
			t.Errorf("ops seed %q not in image", name)
		}
	}
}

func TestColdCodeIsCold(t *testing.T) {
	img := New(DefaultConfig())
	cold := 0
	for i := range img.Prog.Procs {
		if img.Prog.Procs[i].Cold {
			cold++
		}
	}
	if cold != DefaultConfig().ColdProcs {
		t.Fatalf("cold procs = %d, want %d", cold, DefaultConfig().ColdProcs)
	}
}

func TestColdCodeDeterministic(t *testing.T) {
	a := New(Config{ColdProcs: 50, Seed: 7})
	b := New(Config{ColdProcs: 50, Seed: 7})
	if a.Prog.NumBlocks() != b.Prog.NumBlocks() ||
		a.Prog.NumInstructions() != b.Prog.NumInstructions() {
		t.Fatal("cold generation not deterministic")
	}
	for i := 0; i < a.Prog.NumBlocks(); i++ {
		ba, bb := a.Prog.Block(program.BlockID(i)), b.Prog.Block(program.BlockID(i))
		if ba.Name != bb.Name || ba.Size != bb.Size || ba.Kind != bb.Kind {
			t.Fatalf("block %d differs between identical seeds", i)
		}
	}
}

// buildEnv creates a small table with btree and hash indices and an
// image session; used to drive every operator shape under validation.
type env struct {
	img   *Image
	ses   *Session
	ctx   *executor.Ctx
	heap  *access.Heap
	btree *access.BTree
	hash  *access.HashIndex
	sch   *catalog.Schema
}

func newEnv(t *testing.T, rows int) *env {
	t.Helper()
	img := New(Config{ColdProcs: 10, Seed: 3})
	ses := img.NewSession(true)
	st := storage.NewStore(3)
	m := buffer.New(st, 64)
	heap := access.NewHeap(m, 0)
	bt, err := access.CreateBTree(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	hx, err := access.CreateHashIndex(m, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		row := executor.Tuple{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 5)),
			value.NewFloat(float64(i) * 1.5),
		}
		tid, err := heap.Insert(row, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := bt.Insert(int64(i), tid); err != nil {
			t.Fatal(err)
		}
		if err := hx.Insert(int64(i%5), tid); err != nil {
			t.Fatal(err)
		}
	}
	sch := catalog.NewSchema(
		catalog.Column{Name: "a", Type: value.Int},
		catalog.Column{Name: "b", Type: value.Int},
		catalog.Column{Name: "f", Type: value.Float},
	)
	return &env{img: img, ses: ses, ctx: executor.NewCtx(ses),
		heap: heap, btree: bt, hash: hx, sch: sch}
}

func (e *env) drain(t *testing.T, n executor.Node) int {
	t.Helper()
	if err := n.Open(); err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, ok, err := n.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	return count
}

func intvar(i int) executor.Expr {
	return &executor.Var{Idx: i, T: value.Int}
}
func intconst(v int64) executor.Expr {
	return &executor.Const{V: value.NewInt(v)}
}

// TestAllQueryShapesValidate runs every operator shape under a
// validating session: any probe-protocol violation (illegal edge,
// unbalanced call/return) fails the test. This is the master check
// that the engine instrumentation and the kernel CFGs agree.
func TestAllQueryShapesValidate(t *testing.T) {
	e := newEnv(t, 60)
	c := e.ctx

	seq := func(quals ...executor.Expr) executor.Node {
		return &executor.SeqScan{C: c, Heap: e.heap, Out: e.sch, Quals: quals}
	}

	shapes := map[string]func() executor.Node{
		"seqscan": func() executor.Node { return seq() },
		"seqscan+qual": func() executor.Node {
			return seq(&executor.BinOp{Op: executor.OpLT, L: intvar(0), R: intconst(10)})
		},
		"indexscan-btree": func() executor.Node {
			return &executor.IndexScan{C: c, Heap: e.heap, Out: e.sch,
				BTree: e.btree, Lo: 10, Hi: 30, HasLo: true, HasHi: true}
		},
		"indexscan-btree+qual": func() executor.Node {
			return &executor.IndexScan{C: c, Heap: e.heap, Out: e.sch,
				BTree: e.btree, Lo: 10, Hi: 30, HasLo: true, HasHi: true,
				Quals: []executor.Expr{&executor.BinOp{Op: executor.OpEQ, L: intvar(1), R: intconst(2)}}}
		},
		"indexscan-hash": func() executor.Node {
			return &executor.IndexScan{C: c, Heap: e.heap, Out: e.sch,
				HashIdx: e.hash, EqKey: 3}
		},
		"filter+project": func() executor.Node {
			return &executor.ProjectNode{C: c,
				Child: &executor.Filter{C: c, Child: seq(),
					Quals: []executor.Expr{&executor.BinOp{Op: executor.OpGE, L: intvar(0), R: intconst(50)}}},
				Exprs: []executor.Expr{
					&executor.BinOp{Op: executor.OpMul, L: intvar(0), R: intconst(3)},
				}}
		},
		"hashjoin": func() executor.Node {
			return &executor.HashJoin{C: c, Outer: seq(), Inner: seq(),
				OuterKey: 1, InnerKey: 0}
		},
		"hashjoin+qual": func() executor.Node {
			return &executor.HashJoin{C: c, Outer: seq(), Inner: seq(),
				OuterKey: 1, InnerKey: 0,
				Quals: []executor.Expr{&executor.BinOp{Op: executor.OpLT, L: intvar(2), R: &executor.Const{V: value.NewFloat(30)}}}}
		},
		"nestloop": func() executor.Node {
			return &executor.NestLoop{C: c,
				Outer: seq(&executor.BinOp{Op: executor.OpLT, L: intvar(0), R: intconst(4)}),
				Inner: seq(&executor.BinOp{Op: executor.OpLT, L: intvar(0), R: intconst(4)}),
				Quals: []executor.Expr{&executor.BinOp{Op: executor.OpEQ, L: intvar(1), R: &executor.Var{Idx: 4, T: value.Int}}}}
		},
		"indexloopjoin-btree": func() executor.Node {
			return &executor.IndexLoopJoin{C: c,
				Outer:    seq(&executor.BinOp{Op: executor.OpLT, L: intvar(0), R: intconst(5)}),
				OuterKey: 1, Heap: e.heap, BTree: e.btree, InnerSch: e.sch}
		},
		"indexloopjoin-hash": func() executor.Node {
			return &executor.IndexLoopJoin{C: c,
				Outer:    seq(&executor.BinOp{Op: executor.OpLT, L: intvar(0), R: intconst(5)}),
				OuterKey: 1, Heap: e.heap, HashIdx: e.hash, InnerSch: e.sch}
		},
		"sort": func() executor.Node {
			return &executor.Sort{C: c, Child: seq(),
				Keys: []executor.SortKey{{Col: 1}, {Col: 0, Desc: true}}}
		},
		"mergejoin": func() executor.Node {
			return &executor.MergeJoin{C: c,
				Outer:    &executor.Sort{C: c, Child: seq(), Keys: []executor.SortKey{{Col: 1}}},
				Inner:    &executor.Sort{C: c, Child: seq(), Keys: []executor.SortKey{{Col: 1}}},
				OuterKey: 1, InnerKey: 1}
		},
		"agg": func() executor.Node {
			return &executor.Agg{C: c, Child: seq(), Specs: []executor.AggSpec{
				{Func: executor.AggCount},
				{Func: executor.AggSum, Arg: intvar(0)},
				{Func: executor.AggAvg, Arg: &executor.Var{Idx: 2, T: value.Float}},
			}}
		},
		"group": func() executor.Node {
			return &executor.GroupAgg{C: c,
				Child:   &executor.Sort{C: c, Child: seq(), Keys: []executor.SortKey{{Col: 1}}},
				GroupBy: []int{1},
				Specs: []executor.AggSpec{
					{Func: executor.AggCount},
					{Func: executor.AggSum, Arg: intvar(0)},
				}}
		},
		"material": func() executor.Node {
			return &executor.Material{C: c, Child: seq()}
		},
		"limit": func() executor.Node {
			return &executor.Limit{C: c, Child: seq(), N: 5}
		},
		"complex": func() executor.Node {
			// Project(Group(Sort(HashJoin(seq, idx)))) with expressions.
			join := &executor.HashJoin{C: c, Outer: seq(), Inner: seq(),
				OuterKey: 1, InnerKey: 0}
			srt := &executor.Sort{C: c, Child: join, Keys: []executor.SortKey{{Col: 1}}}
			grp := &executor.GroupAgg{C: c, Child: srt, GroupBy: []int{1},
				Specs: []executor.AggSpec{
					{Func: executor.AggSum, Arg: &executor.BinOp{Op: executor.OpMul,
						L: &executor.Var{Idx: 2, T: value.Float}, R: intvar(0)}},
					{Func: executor.AggCount},
				}}
			return &executor.ProjectNode{C: c, Child: grp,
				Exprs: []executor.Expr{intvar(0), intvar(1)}}
		},
	}
	for name, mk := range shapes {
		before := e.ses.Trace().Len()
		n := e.drain(t, mk())
		if err := e.ses.Err(); err != nil {
			t.Fatalf("shape %q: trace validation failed: %v", name, err)
		}
		after := e.ses.Trace().Len()
		if after <= before {
			t.Errorf("shape %q: no trace events recorded", name)
		}
		_ = n
	}
	t.Logf("total trace: %d block events, %d instrs",
		e.ses.Trace().Len(), e.ses.Trace().Instrs)
}

// TestTraceMatchesStaticEdges replays the recorded trace and checks
// every transition explicitly (the recorder validated online; this
// re-checks offline on the stored trace).
func TestTraceMatchesStaticEdges(t *testing.T) {
	e := newEnv(t, 40)
	c := e.ctx
	scan := &executor.SeqScan{C: c, Heap: e.heap, Out: e.sch,
		Quals: []executor.Expr{&executor.BinOp{Op: executor.OpLT, L: intvar(1), R: intconst(3)}}}
	agg := &executor.Agg{C: c, Child: scan, Specs: []executor.AggSpec{
		{Func: executor.AggSum, Arg: intvar(0)},
	}}
	e.drain(t, agg)
	if err := e.ses.Err(); err != nil {
		t.Fatal(err)
	}
	tr := e.ses.Trace()
	bad := 0
	depth := 0
	skipNext := false
	for i := 0; i < tr.Len(); i++ {
		if i > 0 && !skipNext && !e.img.Prog.ValidEdge(tr.Blocks[i-1], tr.Blocks[i]) {
			bad++
		}
		skipNext = false
		switch e.img.Prog.Block(tr.Blocks[i]).Kind {
		case program.KindCall:
			depth++
		case program.KindReturn:
			if depth > 0 {
				depth--
			} else {
				// Return above the trace start: the next transition is
				// unvalidatable, as in the recorder.
				skipNext = true
			}
		}
	}
	if bad != 0 {
		t.Fatalf("%d invalid transitions in trace of %d events", bad, tr.Len())
	}
}
