package repro_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/db/executor"
	"repro/internal/db/sql"
	"repro/internal/experiments"
	"repro/internal/fetch"
	"repro/internal/kernel"
	"repro/internal/layout"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/tpcd"
)

// benchSetup builds the full experiment setup once and shares it
// across the table/figure benchmarks.
var benchSetup *experiments.Setup

func setup(b *testing.B) *experiments.Setup {
	b.Helper()
	if benchSetup == nil {
		s, err := experiments.NewSetup(experiments.Params{SF: 0.001, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		benchSetup = s
	}
	return benchSetup
}

// BenchmarkTable1 regenerates the paper's Table 1 (static vs executed
// footprint) and reports the executed percentages as metrics.
func BenchmarkTable1(b *testing.B) {
	s := setup(b)
	var fs profile.FootprintStats
	for i := 0; i < b.N; i++ {
		fs = s.Table1()
	}
	b.ReportMetric(fs.PctProcs(), "%procs")
	b.ReportMetric(fs.PctBlocks(), "%blocks")
	b.ReportMetric(fs.PctInstrs(), "%instrs")
}

// BenchmarkFigure2 regenerates the cumulative-reference curve and
// reports the block counts covering 90% and 99% of references.
func BenchmarkFigure2(b *testing.B) {
	s := setup(b)
	var n90, n99 int
	for i := 0; i < b.N; i++ {
		n90 = s.Profile.BlocksForCoverage(0.90)
		n99 = s.Profile.BlocksForCoverage(0.99)
	}
	b.ReportMetric(float64(n90), "blocks@90%")
	b.ReportMetric(float64(n99), "blocks@99%")
}

// BenchmarkTable2 regenerates the block-type/predictability breakdown
// and reports the overall predictability.
func BenchmarkTable2(b *testing.B) {
	s := setup(b)
	var st profile.TypeStats
	for i := 0; i < b.N; i++ {
		st = s.Table2()
	}
	b.ReportMetric(st.OverallPct, "%predictable")
}

// BenchmarkReuse regenerates the Section 4.1 temporal-locality numbers.
func BenchmarkReuse(b *testing.B) {
	s := setup(b)
	var st profile.ReuseStats
	for i := 0; i < b.N; i++ {
		st = s.Reuse()
	}
	b.ReportMetric(100*st.Prob[0], "%reuse<100")
	b.ReportMetric(100*st.Prob[1], "%reuse<250")
}

// BenchmarkTable3 regenerates one representative Table 3 cell per
// layout (2KB cache, 1KB CFA) and reports the miss rates.
func BenchmarkTable3(b *testing.B) {
	s := setup(b)
	cc := experiments.CacheConfig{CacheBytes: 2048, CFABytes: 1024}
	miss := map[string]float64{}
	for i := 0; i < b.N; i++ {
		layouts := s.Layouts(cc)
		for _, name := range experiments.LayoutNames {
			ic := cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes)
			res := fetch.Simulate(s.TestTrace, layouts[name], fetch.DefaultConfig(ic))
			miss[name] = res.MissesPer100Instr()
		}
	}
	b.ReportMetric(miss["orig"], "orig-miss/100")
	b.ReportMetric(miss["P&H"], "P&H-miss/100")
	b.ReportMetric(miss["Torr"], "Torr-miss/100")
	b.ReportMetric(miss["auto"], "auto-miss/100")
	b.ReportMetric(miss["ops"], "ops-miss/100")
}

// BenchmarkTable4 regenerates one representative Table 4 cell per
// layout plus the trace-cache combination and reports the IPCs.
func BenchmarkTable4(b *testing.B) {
	s := setup(b)
	cc := experiments.CacheConfig{CacheBytes: 2048, CFABytes: 1024}
	ipc := map[string]float64{}
	var tc, tcops float64
	for i := 0; i < b.N; i++ {
		layouts := s.Layouts(cc)
		for _, name := range experiments.LayoutNames {
			ic := cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes)
			ipc[name] = fetch.Simulate(s.TestTrace, layouts[name], fetch.DefaultConfig(ic)).IPC()
		}
		cfg := fetch.DefaultConfig(cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes))
		cfg.TC = cache.NewTraceCache(experiments.TraceCacheEntries, 16, 3, 4)
		tc = fetch.Simulate(s.TestTrace, layouts["orig"], cfg).IPC()
		cfg2 := fetch.DefaultConfig(cache.NewDirectMapped(cc.CacheBytes, cache.DefaultLineBytes))
		cfg2.TC = cache.NewTraceCache(experiments.TraceCacheEntries, 16, 3, 4)
		tcops = fetch.Simulate(s.TestTrace, layouts["ops"], cfg2).IPC()
	}
	b.ReportMetric(ipc["orig"], "orig-IPC")
	b.ReportMetric(ipc["ops"], "ops-IPC")
	b.ReportMetric(tc, "TC-IPC")
	b.ReportMetric(tcops, "TC+ops-IPC")
}

// BenchmarkSequentiality reports the headline instructions-between-
// taken-branches metric for orig and ops layouts.
func BenchmarkSequentiality(b *testing.B) {
	s := setup(b)
	var m map[string]float64
	for i := 0; i < b.N; i++ {
		m = s.Sequentiality()
	}
	b.ReportMetric(m["orig"], "orig-instr/taken")
	b.ReportMetric(m["ops"], "ops-instr/taken")
}

// BenchmarkAblationThresholds sweeps the STC thresholds (the paper's
// future-work item on automated threshold selection).
func BenchmarkAblationThresholds(b *testing.B) {
	s := setup(b)
	cc := experiments.CacheConfig{CacheBytes: 4096, CFABytes: 1024}
	var best float64
	for i := 0; i < b.N; i++ {
		best = 0
		for _, pt := range s.AblationThresholds(cc) {
			if pt.IPC > best {
				best = pt.IPC
			}
		}
	}
	b.ReportMetric(best, "best-IPC")
}

// ---- microbenchmarks on the substrates ----

// BenchmarkFetchSimulator measures raw fetch-simulation throughput.
func BenchmarkFetchSimulator(b *testing.B) {
	s := setup(b)
	l := program.OriginalLayout(s.Img.Prog)
	ic := cache.NewDirectMapped(2048, cache.DefaultLineBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fetch.Simulate(s.TestTrace, l, fetch.DefaultConfig(ic))
	}
	b.SetBytes(int64(s.TestTrace.Instrs * 4))
}

// BenchmarkSTCLayout measures layout construction.
func BenchmarkSTCLayout(b *testing.B) {
	s := setup(b)
	params := core.Params{ExecThreshold: 32, BranchThreshold: 0.4,
		CacheBytes: 2048, CFABytes: 512}
	seeds := core.OpsSeeds(s.Profile, kernel.OpsSeedNames)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build("bench", s.Profile, seeds, params)
	}
}

// BenchmarkPettisHansen measures the baseline layout construction.
func BenchmarkPettisHansen(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layout.PettisHansen(s.Profile)
	}
}

// BenchmarkQ6 measures end-to-end query execution (untraced).
func BenchmarkQ6(b *testing.B) {
	cfg := tpcd.DefaultConfig()
	cfg.SF = 0.001
	db, err := tpcd.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	q, _ := tpcd.Query(6)
	c := executor.NewCtx(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sql.Exec(db, c, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ3Traced measures query execution with trace recording.
func BenchmarkQ3Traced(b *testing.B) {
	cfg := tpcd.DefaultConfig()
	cfg.SF = 0.001
	db, err := tpcd.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	img := kernel.New(kernel.DefaultConfig())
	q, _ := tpcd.Query(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ses := img.NewSession(false)
		if _, _, err := sql.Exec(db, executor.NewCtx(ses), q); err != nil {
			b.Fatal(err)
		}
	}
}
