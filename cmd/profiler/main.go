// Command profiler runs the paper's training workload on the
// instrumented kernel and prints the weighted-CFG profile summary:
// footprint, hottest blocks and procedures, and type breakdown
// (Section 4 of the paper).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/dsdb/stcpipe"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	top := flag.Int("top", 20, "number of hottest blocks to list")
	flag.Parse()

	r, err := stcpipe.NewReport(stcpipe.ReportParams{SF: *sf, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Table1())
	fmt.Println()
	fmt.Print(r.Table2())
	fmt.Println()
	fmt.Printf("hottest %d basic blocks (training set):\n", *top)
	for i, b := range r.HottestBlocks(*top) {
		fmt.Printf("%4d. %-28s %10d executions (%d instrs)\n",
			i+1, b.Name, b.Executions, b.Instrs)
	}
}
