// Command profiler runs the paper's training workload on the
// instrumented kernel and prints the weighted-CFG profile summary:
// footprint, hottest blocks and procedures, and type breakdown
// (Section 4 of the paper).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	top := flag.Int("top", 20, "number of hottest blocks to list")
	flag.Parse()

	s, err := experiments.NewSetup(experiments.Params{SF: *sf, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatTable1(s.Table1()))
	fmt.Println()
	fmt.Print(experiments.FormatTable2(s.Table2()))
	fmt.Println()
	fmt.Printf("hottest %d basic blocks (training set):\n", *top)
	blocks := s.Profile.ExecutedBlocks()
	for i, b := range blocks {
		if i >= *top {
			break
		}
		blk := s.Img.Prog.Block(b)
		fmt.Printf("%4d. %-28s %10d executions (%d instrs)\n",
			i+1, blk.Name, s.Profile.Weight(b), blk.Size)
	}
}
