// Command profiler runs the paper's training workload on the
// instrumented kernel and prints the weighted-CFG profile summary:
// footprint, hottest blocks and procedures, and type breakdown
// (Section 4 of the paper).
//
// With -sessions N (N > 1) it profiles a multi-session workload
// instead: N concurrent clients each run the training set against one
// shared database, every session recording its own trace, and the
// interleaved trace is profiled — the concurrency measurement
// scenario for the paper's fetch models. Adding -served runs those N
// sessions as real wire clients against an in-process dsdb server
// (stcpipe.ProfileServed): instruction fetch under served DSS
// traffic.
//
// With -cached N (N ≥ 2) it instead profiles the training workload N
// rounds against a result-cached database (stcpipe.ProfileCached) and
// prints the per-execution trace segments: round 1 fills the cache,
// every later round is served from it and records zero kernel
// instructions — the instruction-stream collapse of repeated DSS
// queries.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/dsdb"
	"repro/dsdb/stcpipe"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	top := flag.Int("top", 20, "number of hottest blocks to list")
	sessions := flag.Int("sessions", 1, "concurrent sessions to profile (1 = the paper's serial run)")
	served := flag.Bool("served", false, "run the sessions as wire clients against an in-process server")
	cached := flag.Int("cached", 0, "profile N rounds against a result-cached database (N >= 2; repeats hit the cache)")
	flag.Parse()

	if *cached > 0 {
		profileCached(*sf, *cached)
		return
	}
	if *served || *sessions > 1 {
		profileConcurrent(*sf, *sessions, *top, *served)
		return
	}

	r, err := stcpipe.NewReport(stcpipe.ReportParams{SF: *sf, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Table1())
	fmt.Println()
	fmt.Print(r.Table2())
	fmt.Println()
	printHottest("training set", r.HottestBlocks(*top))
}

// printHottest renders the hottest-block listing shared by the serial
// and concurrent summaries.
func printHottest(what string, blocks []stcpipe.BlockStat) {
	fmt.Printf("hottest %d basic blocks (%s):\n", len(blocks), what)
	for i, b := range blocks {
		fmt.Printf("%4d. %-28s %10d executions (%d instrs)\n",
			i+1, b.Name, b.Executions, b.Instrs)
	}
}

// profileCached traces the training workload run `rounds` times
// against a result-cached database and prints every execution's trace
// segment — the repeat rounds collapse to zero instructions.
func profileCached(sf float64, rounds int) {
	db, err := dsdb.Open(dsdb.WithTPCD(sf), dsdb.WithResultCache(64<<20))
	if err != nil {
		log.Fatal(err)
	}
	pipe := stcpipe.New()
	pr, err := pipe.ProfileCached(db, stcpipe.Training(), rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached profile, %d rounds of the training set: %d block events, %d instrs total\n",
		rounds, pr.Events(), pr.Instrs())
	for _, m := range pr.MarkStats() {
		fmt.Printf("  %-16s %10d blocks %12d instrs\n", m.Label, m.Blocks, m.Instrs)
	}
	if st, ok := db.ResultCacheStats(); ok {
		fmt.Printf("result cache: %d hits / %d misses (%.1f%%), %d entries, %d/%d bytes\n",
			st.Hits, st.Misses, 100*st.HitRatio(), st.Entries, st.UsedBytes, st.MaxBytes)
	}
}

// profileConcurrent traces the training workload run by n concurrent
// sessions — goroutines sharing the database directly, or (served)
// wire clients against an in-process server — and prints the
// footprint and hottest blocks of the interleaved trace.
func profileConcurrent(sf float64, n, top int, served bool) {
	db, err := dsdb.Open(dsdb.WithTPCD(sf))
	if err != nil {
		log.Fatal(err)
	}
	pipe := stcpipe.New()
	var pr *stcpipe.Profile
	how := "concurrent"
	if served {
		how = "served"
		pr, err = pipe.ProfileServed(db, n, stcpipe.Training())
	} else {
		pr, err = pipe.ProfileConcurrent(db, n, stcpipe.Training())
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d %s sessions, interleaved trace: %d block events, %d instrs\n",
		n, how, pr.Events(), pr.Instrs())
	fp := pr.Footprint()
	fmt.Printf("executed footprint: %.1f%% of procedures, %.1f%% of blocks, %.1f%% of instructions\n",
		fp.PctProcs(), fp.PctBlocks(), fp.PctInstrs())
	printHottest(fmt.Sprintf("%d-session training set", n), pr.HottestBlocks(top))
}
