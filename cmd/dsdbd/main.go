// Command dsdbd is the dsdb daemon: it loads a TPC-D database and
// serves it over the wire protocol (dsdb/wire) until SIGINT/SIGTERM,
// at which point it drains connections at query boundaries and exits.
//
// Usage:
//
//	dsdbd -addr 127.0.0.1:5454 -sf 0.002
//	dsdbd -addr :5454 -hash -max-conns 128 -query-timeout 30s
//	dsdbd -addr :5454 -write-timeout 5s -idle-timeout 10m  # hostile-client bounds
//	dsdbd -addr :5454 -result-cache-bytes 67108864   # 64MB result cache
//	dsdbd -addr :5454 -data-dir /var/lib/dsdb        # durable; restarts warm-start
//
// The write timeout (default 30s) is the slow-client liveness bound:
// a client that stops reading its result stream is disconnected when
// a frame write exceeds it, cancelling the query so stalled readers
// cannot wedge writers. On shutdown the daemon logs its serving
// counters (uptime, conns, slow kills, queries, in-flight, rows,
// bytes); a live server answers the same counters over the wire
// ("show stats", or dsload -server-stats).
//
// Observability: every query gets a per-stage span (plan, cache,
// exec, io, wal, net). -slow-query-log logs queries over the given
// threshold to stderr with their stage breakdown, and "show queries"
// / "show slow" expose the recent/slow rings over the wire.
// -metrics-addr serves /metrics (Prometheus text format: counters,
// the log-spaced latency histogram, per-stage histograms) and
// /debug/pprof on a second listener:
//
//	dsdbd -addr :5454 -metrics-addr 127.0.0.1:9090 -slow-query-log 100ms
//
// With -capture-dir every served query is recorded to an append-only
// workload-capture log (dsdb/wcap): SQL, session, outcome, latency
// and per-stage breakdown, written off the hot path so capture never
// slows a query. -capture-sample keeps only a deterministic fraction
// of queries for high-QPS servers. A capture replays anywhere with
// cmd/dsreplay, and "show capture" exposes the live counters —
// dropped must stay 0 for the capture to be complete:
//
//	dsdbd -addr :5454 -capture-dir /var/lib/dsdb-capture
//	dsdbd -addr :5454 -capture-dir cap -capture-sample 0.01
//
// With -data-dir the database is durable: the first start builds the
// TPC-D dataset, checkpoints it into the directory and write-ahead
// logs every mutation after that; any later start (including after a
// SIGKILL) recovers from the directory and skips the TPC-D load
// entirely. A graceful shutdown drains connections at query boundaries
// and checkpoints before exiting, so the next start replays nothing.
//
// Pair it with cmd/dsload for closed-loop load, or dial it from any
// program via dsdb/client.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/dsdb"
	"repro/dsdb/server"
	"repro/dsdb/wcap"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:5454", "listen address")
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	hash := flag.Bool("hash", false, "use the hash-indexed database instead of Btree")
	frames := flag.Int("frames", 2048, "buffer pool frames")
	maxConns := flag.Int("max-conns", 64, "connection limit")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline (0 = none)")
	writeTimeout := flag.Duration("write-timeout", server.DefaultWriteTimeout, "per-frame-write deadline; a client that stops reading past it is disconnected (0 = unbounded, liveness-unsafe)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close sessions idle between queries for this long (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget before force-closing")
	cacheBytes := flag.Int64("result-cache-bytes", 0, "query result cache budget in bytes (0 = disabled)")
	cacheTTL := flag.Duration("result-cache-ttl", 0, "result cache entry TTL (0 = no expiry)")
	cacheMinCost := flag.Duration("result-cache-min-cost", 0, "result cache admission threshold: skip caching queries whose first run was faster (0 = admit all)")
	dataDir := flag.String("data-dir", "", "durable data directory (empty = in-memory; existing dirs warm-start, skipping the TPC-D load)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address (empty = disabled)")
	slowQuery := flag.Duration("slow-query-log", 0, "log queries slower than this to stderr with their per-stage breakdown (0 = disabled)")
	captureDir := flag.String("capture-dir", "", "record every served query to a workload-capture log in this directory (empty = disabled; replay with dsreplay)")
	captureSample := flag.Float64("capture-sample", 0, "capture only this fraction of queries, deterministically (0 or 1 = all; needs -capture-dir)")
	flag.Parse()

	if (*cacheTTL > 0 || *cacheMinCost > 0) && *cacheBytes <= 0 {
		log.Fatal("dsdbd: -result-cache-ttl/-result-cache-min-cost need -result-cache-bytes > 0")
	}
	if *captureSample != 0 && *captureDir == "" {
		log.Fatal("dsdbd: -capture-sample needs -capture-dir")
	}

	kind := dsdb.BTree
	if *hash {
		kind = dsdb.Hash
	}
	fmt.Fprintf(os.Stderr, "dsdbd: loading TPC-D (SF=%g, %s indices, seed %d)...\n", *sf, kind, *seed)
	opts := []dsdb.Option{dsdb.WithTPCD(*sf), dsdb.WithIndexKind(kind),
		dsdb.WithSeed(*seed), dsdb.WithBufferFrames(*frames)}
	if *cacheBytes > 0 {
		opts = append(opts, dsdb.WithResultCache(*cacheBytes),
			dsdb.WithResultCacheTTL(*cacheTTL),
			dsdb.WithResultCacheAdmission(*cacheMinCost))
	}
	if *dataDir != "" {
		opts = append(opts, dsdb.WithDataDir(*dataDir))
	}
	db, err := dsdb.Open(opts...)
	if err != nil {
		log.Fatal(err)
	}
	if db.WarmStarted() {
		fmt.Fprintf(os.Stderr, "dsdbd: warm start from %s (recovered; TPC-D load skipped)\n", *dataDir)
	} else if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "dsdbd: built durable database in %s\n", *dataDir)
	}

	srvOpts := []server.Option{
		server.WithMaxConns(*maxConns),
		server.WithQueryTimeout(*queryTimeout),
		server.WithWriteTimeout(*writeTimeout),
		server.WithIdleTimeout(*idleTimeout),
		server.WithSlowQueryThreshold(*slowQuery),
	}
	var capture *wcap.Writer
	if *captureDir != "" {
		capture, err = wcap.Open(*captureDir, wcap.Options{Sample: *captureSample})
		if err != nil {
			log.Fatalf("dsdbd: -capture-dir: %v", err)
		}
		srvOpts = append(srvOpts, server.WithCapture(capture))
		fmt.Fprintf(os.Stderr, "dsdbd: capturing served queries to %s\n", *captureDir)
	}
	srv := server.New(db, srvOpts...)
	if *slowQuery > 0 {
		db.Obs().SetSlowLogger(log.New(os.Stderr, "dsdbd: slow query: ", 0))
	}
	if *metricsAddr != "" {
		go func() {
			log.Fatalf("dsdbd: metrics listener: %v", http.ListenAndServe(*metricsAddr, server.NewMetricsMux(srv)))
		}()
		fmt.Fprintf(os.Stderr, "dsdbd: metrics and pprof on http://%s\n", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Fprintf(os.Stderr, "dsdbd: serving on %s (max %d conns)\n", *addr, *maxConns)

	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "dsdbd: %v, draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("dsdbd: forced shutdown: %v", err)
		}
		st := srv.Stats()
		fmt.Fprintf(os.Stderr, "dsdbd: served %d conns (%d refused, %d slow-killed, %d idle-killed), %d queries (%d failed, %d cancelled, %d cache hits, %d in flight), %d rows / %d bytes streamed, up %s\n",
			st.TotalConns, st.RefusedConns, st.SlowClientKills, st.IdleKills,
			st.Queries, st.QueryErrors, st.CancelledQueries, st.CacheHits, st.InFlightQueries,
			st.RowsStreamed, st.BytesWritten, st.Uptime.Round(time.Second))
		// Capture closes after the drain: every query that completed is
		// in the log, and the final counters say whether it is complete
		// (dropped == 0) before anyone replays it.
		if capture != nil {
			if err := capture.Close(); err != nil {
				log.Printf("dsdbd: capture close: %v", err)
			}
			cst := capture.Stats()
			fmt.Fprintf(os.Stderr, "dsdbd: captured %d queries (%d dropped, %d sampled out), %d bytes in %s\n",
				cst.Records, cst.Dropped, cst.SampledOut, cst.Bytes, *captureDir)
		}
		if st, ok := db.ResultCacheStats(); ok {
			fmt.Fprintf(os.Stderr, "dsdbd: result cache: %d hits / %d misses (%.1f%%), %d entries, %d/%d bytes, %d evictions, %d invalidations, %d expirations, %d admission rejects\n",
				st.Hits, st.Misses, 100*st.HitRatio(), st.Entries, st.UsedBytes, st.MaxBytes, st.Evictions, st.Invalidations, st.Expirations, st.AdmissionRejects)
		}
		// Checkpoint-on-drain: collapse the log into page files so the
		// next start recovers instantly (Close checkpoints durable DBs).
		if err := db.Close(); err != nil {
			log.Fatalf("dsdbd: closing database: %v", err)
		}
		if db.Durable() {
			fmt.Fprintln(os.Stderr, "dsdbd: checkpointed data directory")
		}
		fmt.Fprintln(os.Stderr, "dsdbd: clean shutdown")
	case err := <-errc:
		log.Fatalf("dsdbd: %v", err)
	}
}
