// Command experiments regenerates every table and figure of the paper
// end to end: it builds the TPC-D databases, runs the training and
// test workloads on the instrumented kernel, and prints the paper-style
// tables. See EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/dsdb/stcpipe"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	validate := flag.Bool("validate", false, "validate traces against the static CFG while recording")
	only := flag.String("only", "", "run a single experiment: table1|figure2|reuse|table2|table3|table4|seq|ablation")
	parallel := flag.Int("parallel", 1, "partition-parallel scan workers while tracing (1 = the paper's serial plans)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "building databases and traces (SF=%g, parallelism=%d)...\n", *sf, *parallel)
	r, err := stcpipe.NewReport(stcpipe.ReportParams{
		SF: *sf, Seed: *seed, Validate: *validate, Parallelism: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, r.TraceSummary())

	sections := []struct {
		name   string
		render func() string
	}{
		{"table1", r.Table1},
		{"figure2", r.Figure2},
		{"reuse", r.Reuse},
		{"table2", r.Table2},
		{"seq", r.Sequentiality},
		{"table3", r.Table3},
		{"table4", r.Table4},
		{"ablation", r.Ablation},
	}
	for _, s := range sections {
		if *only == "" || *only == s.name {
			fmt.Println(s.render())
		}
	}
}
