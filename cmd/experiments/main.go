// Command experiments regenerates every table and figure of the paper
// end to end: it builds the TPC-D databases, runs the training and
// test workloads on the instrumented kernel, and prints the paper-style
// tables. See EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	validate := flag.Bool("validate", false, "validate traces against the static CFG while recording")
	only := flag.String("only", "", "run a single experiment: table1|figure2|reuse|table2|table3|table4|seq|ablation")
	flag.Parse()

	params := experiments.Params{SF: *sf, Seed: *seed, Validate: *validate}
	fmt.Fprintf(os.Stderr, "building databases and traces (SF=%g)...\n", *sf)
	s, err := experiments.NewSetup(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "training trace: %d block events (%d instrs); test trace: %d (%d)\n",
		s.TrainTrace.Len(), s.TrainTrace.Instrs, s.TestTrace.Len(), s.TestTrace.Instrs)

	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		fmt.Println(experiments.FormatTable1(s.Table1()))
	}
	if want("figure2") {
		fmt.Println(s.FormatFigure2())
	}
	if want("reuse") {
		fmt.Println(experiments.FormatReuse(s.Reuse()))
	}
	if want("table2") {
		fmt.Println(experiments.FormatTable2(s.Table2()))
	}
	if want("seq") {
		fmt.Println(experiments.FormatSequentiality(s.Sequentiality()))
	}
	if want("table3") {
		fmt.Println(experiments.FormatTable3(s.Table3()))
	}
	if want("table4") {
		ideal, rows := s.Table4()
		fmt.Println(experiments.FormatTable4(ideal, rows))
	}
	if want("ablation") {
		fmt.Println(experiments.FormatAblation(
			s.AblationThresholds(experiments.CacheConfig{CacheBytes: 4096, CFABytes: 1024})))
	}
}
