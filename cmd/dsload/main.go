// Command dsload fires TPC-D load at a dsdbd server: N client
// sessions driving a query mix (train/test/all or an explicit list),
// closed-loop by default or open-loop at a fixed Poisson arrival rate
// with -arrival-rate, with warmup rounds excluded from measurement,
// then prints the latency/throughput summary whose format is pinned
// by the dsdb/load golden tests. Against a server running with a
// result cache, the summary additionally reports the cache hit ratio
// and separate cached/uncached latency percentiles.
//
// Usage:
//
//	dsload -addr 127.0.0.1:5454 -clients 8 -rounds 5 -warmup 1 -mix test
//	dsload -addr 127.0.0.1:5454 -clients 2 -rounds 1 -mix 3,4,6
//	dsload -addr 127.0.0.1:5454 -clients 4 -arrival-rate 200 -mix train
//	dsload -addr 127.0.0.1:5454 -scenario slowreader -slow-clients 2  # liveness probe
//	dsload -addr 127.0.0.1:5454 -scenario zipf -zipf-s 2 -server-stats
//	dsload -addr 127.0.0.1:5454 -arrival-rate 200 -scenario burst -burst-factor 8
//
// The -scenario flag layers adversarial traffic over the mix:
// slowreader adds stalled connections and reports how many the
// server's write timeout killed, zipf draws the mix Zipfian with the
// first query as the hot key, and burst compresses the open-loop
// schedule into periodic bursts at the same average rate.
// -server-stats fetches the server's counter snapshot (a wire Stats
// frame) after the run. -report-json writes the machine-readable run
// summary (throughput, latency percentiles, hit ratio, per-query
// stats, and — when the server is reachable for a stats snapshot —
// its counters and per-stage means) to the given path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/dsdb/client"
	"repro/dsdb/load"
	"repro/dsdb/wire"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:5454", "dsdbd server address")
	clients := flag.Int("clients", 4, "concurrent closed-loop client sessions")
	rounds := flag.Int("rounds", 3, "measured rounds of the mix per client")
	warmup := flag.Int("warmup", 1, "unmeasured warmup rounds per client")
	mixFlag := flag.String("mix", "train", "query mix: train, test, all, or numbers like 3,4,6")
	seed := flag.Int64("seed", 0, "per-client query-order shuffle seed (0 = mix order)")
	wait := flag.Duration("wait-ready", 15*time.Second, "how long to retry the first connection while the server loads")
	timeout := flag.Duration("timeout", 0, "overall run deadline (0 = none)")
	arrivalRate := flag.Float64("arrival-rate", 0, "open-loop aggregate Poisson arrival rate in queries/s (0 = closed loop)")
	scenario := flag.String("scenario", "", "adversarial scenario: slowreader, zipf, or burst (empty = plain mix)")
	slowClients := flag.Int("slow-clients", 0, "slowreader: stalled connections to add (0 = default 2)")
	slowKillWait := flag.Duration("slow-kill-wait", 0, "slowreader: how long to wait for the server to kill stalled readers (0 = default 15s)")
	zipfS := flag.Float64("zipf-s", 0, "zipf: skew exponent > 1 (0 = default 1.5)")
	burstFactor := flag.Float64("burst-factor", 0, "burst: rate multiplier during bursts (0 = default 8)")
	burstPeriod := flag.Duration("burst-period", 0, "burst: burst cycle period (0 = default 1s)")
	serverStats := flag.Bool("server-stats", false, "after the run, fetch and print the server's counter snapshot")
	reportJSON := flag.String("report-json", "", "write the machine-readable run summary (JSON) to this path")
	flag.Parse()

	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fmt.Fprintf(os.Stderr, "dsload: %d clients × %d+%d rounds of mix %s against %s\n",
		*clients, *warmup, *rounds, mix.Name, *addr)
	sum, err := load.Run(ctx, load.Params{
		Addr:         *addr,
		Clients:      *clients,
		Rounds:       *rounds,
		Warmup:       *warmup,
		Mix:          mix,
		Seed:         *seed,
		WaitReady:    *wait,
		ArrivalRate:  *arrivalRate,
		Scenario:     *scenario,
		SlowClients:  *slowClients,
		SlowKillWait: *slowKillWait,
		ZipfS:        *zipfS,
		BurstFactor:  *burstFactor,
		BurstPeriod:  *burstPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum.Report())
	// One stats snapshot serves both consumers: the human -server-stats
	// dump and the JSON report's server sections.
	var st *wire.Stats
	if *serverStats || *reportJSON != "" {
		db, err := client.Dial(*addr)
		if err != nil {
			log.Fatalf("dsload: server stats: %v", err)
		}
		snap, err := db.ServerStats()
		db.Close()
		if err != nil {
			log.Fatalf("dsload: server stats: %v", err)
		}
		st = &snap
	}
	if *serverStats {
		fmt.Println("server stats:")
		for _, p := range st.Pairs {
			fmt.Printf("  %s=%d\n", p.Name, p.Value)
		}
	}
	if *reportJSON != "" {
		blob, err := json.MarshalIndent(load.BuildJSONReport(sum, st), "", "  ")
		if err != nil {
			log.Fatalf("dsload: -report-json: %v", err)
		}
		if err := os.WriteFile(*reportJSON, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("dsload: -report-json: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dsload: wrote JSON report to %s\n", *reportJSON)
	}
}
