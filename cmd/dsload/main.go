// Command dsload fires TPC-D load at a dsdbd server: N client
// sessions driving a query mix (train/test/all or an explicit list),
// closed-loop by default or open-loop at a fixed Poisson arrival rate
// with -arrival-rate, with warmup rounds excluded from measurement,
// then prints the latency/throughput summary whose format is pinned
// by the dsdb/load golden tests. Against a server running with a
// result cache, the summary additionally reports the cache hit ratio
// and separate cached/uncached latency percentiles.
//
// Usage:
//
//	dsload -addr 127.0.0.1:5454 -clients 8 -rounds 5 -warmup 1 -mix test
//	dsload -addr 127.0.0.1:5454 -clients 2 -rounds 1 -mix 3,4,6
//	dsload -addr 127.0.0.1:5454 -clients 4 -arrival-rate 200 -mix train
//	dsload -addr 127.0.0.1:5454 -scenario slowreader -slow-clients 2  # liveness probe
//	dsload -addr 127.0.0.1:5454 -scenario zipf -zipf-s 2 -server-stats
//	dsload -addr 127.0.0.1:5454 -arrival-rate 200 -scenario burst -burst-factor 8
//	dsload -addr 127.0.0.1:5454 -mix test -explain-worst  # ANALYZE the slowest query
//
// The -scenario flag layers adversarial traffic over the mix:
// slowreader adds stalled connections and reports how many the
// server's write timeout killed, zipf draws the mix Zipfian with the
// first query as the hot key, and burst compresses the open-loop
// schedule into periodic bursts at the same average rate.
// -server-stats fetches the server's counter snapshot (a wire Stats
// frame) after the run. -report-json writes the machine-readable run
// summary (throughput, latency percentiles, hit ratio, per-query
// stats, and — when the server is reachable for a stats snapshot —
// its counters and per-stage means) to the given path.
// -explain-worst re-runs the query with the worst max latency of the
// measured phase under EXPLAIN ANALYZE and prints the annotated plan,
// so a slow run ends with the operator-level evidence in hand.
// Against a server recording its workload (dsdbd -capture-dir),
// -capture-out writes the server's capture counters as JSON after the
// run — CI asserts dropped == 0 there to prove the run was captured
// in full before replaying it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/load"
	"repro/dsdb/wire"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:5454", "dsdbd server address")
	clients := flag.Int("clients", 4, "concurrent closed-loop client sessions")
	rounds := flag.Int("rounds", 3, "measured rounds of the mix per client")
	warmup := flag.Int("warmup", 1, "unmeasured warmup rounds per client")
	mixFlag := flag.String("mix", "train", "query mix: train, test, all, or numbers like 3,4,6")
	seed := flag.Int64("seed", 0, "per-client query-order shuffle seed (0 = mix order)")
	wait := flag.Duration("wait-ready", 15*time.Second, "how long to retry the first connection while the server loads")
	timeout := flag.Duration("timeout", 0, "overall run deadline (0 = none)")
	arrivalRate := flag.Float64("arrival-rate", 0, "open-loop aggregate Poisson arrival rate in queries/s (0 = closed loop)")
	scenario := flag.String("scenario", "", "adversarial scenario: slowreader, zipf, or burst (empty = plain mix)")
	slowClients := flag.Int("slow-clients", 0, "slowreader: stalled connections to add (0 = default 2)")
	slowKillWait := flag.Duration("slow-kill-wait", 0, "slowreader: how long to wait for the server to kill stalled readers (0 = default 15s)")
	zipfS := flag.Float64("zipf-s", 0, "zipf: skew exponent > 1 (0 = default 1.5)")
	burstFactor := flag.Float64("burst-factor", 0, "burst: rate multiplier during bursts (0 = default 8)")
	burstPeriod := flag.Duration("burst-period", 0, "burst: burst cycle period (0 = default 1s)")
	serverStats := flag.Bool("server-stats", false, "after the run, fetch and print the server's counter snapshot")
	reportJSON := flag.String("report-json", "", "write the machine-readable run summary (JSON) to this path")
	captureOut := flag.String("capture-out", "", "write the server's workload-capture counters (JSON) to this path; fails if the server runs without -capture-dir")
	explainWorst := flag.Bool("explain-worst", false, "after the run, EXPLAIN ANALYZE the query with the worst max latency and print the plan")
	flag.Parse()

	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fmt.Fprintf(os.Stderr, "dsload: %d clients × %d+%d rounds of mix %s against %s\n",
		*clients, *warmup, *rounds, mix.Name, *addr)
	sum, err := load.Run(ctx, load.Params{
		Addr:         *addr,
		Clients:      *clients,
		Rounds:       *rounds,
		Warmup:       *warmup,
		Mix:          mix,
		Seed:         *seed,
		WaitReady:    *wait,
		ArrivalRate:  *arrivalRate,
		Scenario:     *scenario,
		SlowClients:  *slowClients,
		SlowKillWait: *slowKillWait,
		ZipfS:        *zipfS,
		BurstFactor:  *burstFactor,
		BurstPeriod:  *burstPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum.Report())
	// One stats snapshot serves both consumers: the human -server-stats
	// dump and the JSON report's server sections.
	var st *wire.Stats
	if *serverStats || *reportJSON != "" || *captureOut != "" {
		db, err := client.Dial(*addr)
		if err != nil {
			log.Fatalf("dsload: server stats: %v", err)
		}
		snap, err := db.ServerStats()
		db.Close()
		if err != nil {
			log.Fatalf("dsload: server stats: %v", err)
		}
		st = &snap
	}
	if *serverStats {
		fmt.Println("server stats:")
		for _, p := range st.Pairs {
			fmt.Printf("  %s=%d\n", p.Name, p.Value)
		}
	}
	if *reportJSON != "" {
		blob, err := json.MarshalIndent(load.BuildJSONReport(sum, st), "", "  ")
		if err != nil {
			log.Fatalf("dsload: -report-json: %v", err)
		}
		if err := os.WriteFile(*reportJSON, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("dsload: -report-json: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dsload: wrote JSON report to %s\n", *reportJSON)
	}
	if *captureOut != "" {
		cap := load.CaptureSection(st)
		if cap == nil {
			log.Fatalf("dsload: -capture-out: server at %s runs without workload capture (start dsdbd with -capture-dir)", *addr)
		}
		fmt.Fprintf(os.Stderr, "dsload: server captured %d queries (%d dropped, %d sampled out), %d bytes\n",
			cap.Records, cap.Dropped, cap.SampledOut, cap.Bytes)
		blob, err := json.MarshalIndent(cap, "", "  ")
		if err != nil {
			log.Fatalf("dsload: -capture-out: %v", err)
		}
		if err := os.WriteFile(*captureOut, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("dsload: -capture-out: %v", err)
		}
	}
	if *explainWorst {
		if err := explainWorstQuery(ctx, *addr, sum); err != nil {
			log.Fatalf("dsload: -explain-worst: %v", err)
		}
	}
}

// explainWorstQuery picks the query with the largest observed max
// latency from the run summary, re-runs it on a fresh connection under
// EXPLAIN ANALYZE, and prints the annotated plan. One extra execution
// after the measured phase — the analyzed run is not representative of
// the worst sample (caches are warm by now), but the plan shape and
// the per-operator cost split are.
func explainWorstQuery(ctx context.Context, addr string, sum *load.Summary) error {
	var worst *load.QueryStat
	for i := range sum.PerQuery {
		q := &sum.PerQuery[i]
		if q.Count == 0 {
			continue
		}
		if worst == nil || q.Lat.Max > worst.Lat.Max {
			worst = q
		}
	}
	if worst == nil {
		return fmt.Errorf("no measured queries in the run")
	}
	qn, err := strconv.Atoi(strings.TrimPrefix(worst.Label, "Q"))
	if err != nil {
		return fmt.Errorf("unrecognized query label %q", worst.Label)
	}
	text, ok := dsdb.TPCDQuery(qn)
	if !ok {
		return fmt.Errorf("no TPC-D query %d", qn)
	}
	db, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer db.Close()
	rows, err := db.QueryLabeled(ctx, worst.Label+"-explain", "explain analyze "+text)
	if err != nil {
		return err
	}
	defer rows.Close()
	fmt.Printf("worst query %s (max %s over %d runs), EXPLAIN ANALYZE:\n",
		worst.Label, worst.Lat.Max.Round(time.Microsecond), worst.Count)
	for rows.Next() {
		vals := rows.Values()
		if len(vals) > 0 {
			fmt.Println(vals[0].String())
		}
	}
	return rows.Err()
}
