// Command dsload fires TPC-D load at a dsdbd server: N client
// sessions driving a query mix (train/test/all or an explicit list),
// closed-loop by default or open-loop at a fixed Poisson arrival rate
// with -arrival-rate, with warmup rounds excluded from measurement,
// then prints the latency/throughput summary whose format is pinned
// by the dsdb/load golden tests. Against a server running with a
// result cache, the summary additionally reports the cache hit ratio
// and separate cached/uncached latency percentiles.
//
// Usage:
//
//	dsload -addr 127.0.0.1:5454 -clients 8 -rounds 5 -warmup 1 -mix test
//	dsload -addr 127.0.0.1:5454 -clients 2 -rounds 1 -mix 3,4,6
//	dsload -addr 127.0.0.1:5454 -clients 4 -arrival-rate 200 -mix train
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/dsdb/load"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:5454", "dsdbd server address")
	clients := flag.Int("clients", 4, "concurrent closed-loop client sessions")
	rounds := flag.Int("rounds", 3, "measured rounds of the mix per client")
	warmup := flag.Int("warmup", 1, "unmeasured warmup rounds per client")
	mixFlag := flag.String("mix", "train", "query mix: train, test, all, or numbers like 3,4,6")
	seed := flag.Int64("seed", 0, "per-client query-order shuffle seed (0 = mix order)")
	wait := flag.Duration("wait-ready", 15*time.Second, "how long to retry the first connection while the server loads")
	timeout := flag.Duration("timeout", 0, "overall run deadline (0 = none)")
	arrivalRate := flag.Float64("arrival-rate", 0, "open-loop aggregate Poisson arrival rate in queries/s (0 = closed loop)")
	flag.Parse()

	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fmt.Fprintf(os.Stderr, "dsload: %d clients × %d+%d rounds of mix %s against %s\n",
		*clients, *warmup, *rounds, mix.Name, *addr)
	sum, err := load.Run(ctx, load.Params{
		Addr:        *addr,
		Clients:     *clients,
		Rounds:      *rounds,
		Warmup:      *warmup,
		Mix:         mix,
		Seed:        *seed,
		WaitReady:   *wait,
		ArrivalRate: *arrivalRate,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum.Report())
}
