// Command dsreplay re-runs a workload capture recorded by dsdbd
// -capture-dir (dsdb/wcap): the exact queries a server once served,
// in their recorded per-session order, against a live server or an
// in-process database. It is the other half of workload capture —
// record production traffic once, then replay it against a candidate
// build, a different index kind, or a re-tuned cache, and compare the
// replayed latency percentiles against the recorded ones.
//
// Usage:
//
//	dsreplay -dir cap -addr 127.0.0.1:5454            # closed-loop, live server
//	dsreplay -dir cap -addr :5454 -paced              # at recorded arrival times
//	dsreplay -dir cap -addr :5454 -paced -timescale 4 # 4× faster than recorded
//	dsreplay -dir cap -local -sf 0.002 -seed 42       # in-process, no server
//	dsreplay -dir cap -addr :5454 -report-json replay.json
//
// Two modes:
//
//   - Live (-addr): one wire connection per recorded session (bounded
//     by -clients), each replaying its session's queries in recorded
//     order — closed-loop by default, or paced at the recorded start
//     offsets with -paced (scaled by -timescale).
//   - Local (-local): the same replay against an in-process database
//     built with -sf/-seed/-hash — for replaying a capture where no
//     server is running. SHOW queries (server introspection) are
//     skipped and counted.
//
// The report always pairs the replayed latency percentiles with the
// percentiles recorded in the capture itself, so a regression is
// visible without keeping the original run around. -report-json
// writes the same machine-readable shape as dsload -report-json plus
// the recorded-vs-replayed comparison.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/dsdb"
	"repro/dsdb/client"
	"repro/dsdb/load"
	"repro/dsdb/wcap"
	"repro/dsdb/wire"
)

func main() {
	log.SetFlags(0)
	dir := flag.String("dir", "", "capture directory to replay (required)")
	addr := flag.String("addr", "", "replay against this live dsdb server")
	local := flag.Bool("local", false, "replay against an in-process database instead of a server")
	sf := flag.Float64("sf", 0.002, "local mode: TPC-D scale factor")
	seed := flag.Int64("seed", 42, "local mode: generator seed")
	hash := flag.Bool("hash", false, "local mode: hash-indexed database instead of Btree")
	clients := flag.Int("clients", 0, "replay workers (0 = one per recorded session)")
	paced := flag.Bool("paced", false, "fire queries at their recorded start offsets instead of closed-loop")
	timescale := flag.Float64("timescale", 1, "paced mode: speed factor over the recorded schedule (2 = twice as fast)")
	wait := flag.Duration("wait-ready", 15*time.Second, "how long to retry the first connection while the server loads")
	timeout := flag.Duration("timeout", 0, "overall replay deadline (0 = none)")
	reportJSON := flag.String("report-json", "", "write the machine-readable replay summary (JSON) to this path")
	flag.Parse()

	if *dir == "" {
		log.Fatal("dsreplay: -dir is required")
	}
	if *local == (*addr != "") {
		log.Fatal("dsreplay: exactly one of -addr and -local is required")
	}
	recs, err := wcap.Load(*dir)
	if err != nil {
		log.Fatalf("dsreplay: reading capture: %v", err)
	}
	if len(recs) == 0 {
		log.Fatalf("dsreplay: capture %s is empty", *dir)
	}
	fmt.Fprintf(os.Stderr, "dsreplay: loaded %d captured queries from %s\n", len(recs), *dir)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	p := load.ReplayParams{
		Records:   recs,
		Clients:   *clients,
		Paced:     *paced,
		Timescale: *timescale,
		WaitReady: *wait,
	}
	if *local {
		kind := dsdb.BTree
		if *hash {
			kind = dsdb.Hash
		}
		fmt.Fprintf(os.Stderr, "dsreplay: loading TPC-D (SF=%g, %s indices, seed %d)...\n", *sf, kind, *seed)
		db, err := dsdb.Open(dsdb.WithTPCD(*sf), dsdb.WithIndexKind(kind), dsdb.WithSeed(*seed))
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()
		p.DB = db
	} else {
		p.Addr = *addr
	}

	sum, err := load.Replay(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum.Report())

	var st *wire.Stats
	if *reportJSON != "" {
		if !*local {
			db, err := client.Dial(*addr)
			if err != nil {
				log.Fatalf("dsreplay: server stats: %v", err)
			}
			snap, err := db.ServerStats()
			db.Close()
			if err != nil {
				log.Fatalf("dsreplay: server stats: %v", err)
			}
			st = &snap
		}
		blob, err := json.MarshalIndent(load.BuildReplayJSONReport(sum, st), "", "  ")
		if err != nil {
			log.Fatalf("dsreplay: -report-json: %v", err)
		}
		if err := os.WriteFile(*reportJSON, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("dsreplay: -report-json: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dsreplay: wrote JSON report to %s\n", *reportJSON)
	}
}
