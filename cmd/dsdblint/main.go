// dsdblint statically enforces the engine's concurrency and
// durability invariants: the lock-rank acquisition order, the
// no-tracer-under-pool-mutex rule, WAL error handling and write-ahead
// ordering, release-on-all-paths for the custom latch surface, and
// context propagation in the request paths — plus a curated set of
// vet passes (copylocks, atomic, unusedresult, lostcancel).
//
// Usage:
//
//	dsdblint [-fix] ./...
//
// The binary is dual-mode. Invoked with package patterns, it re-execs
// `go vet -vettool=<self> <patterns>`, which gives it the build
// system's package loading and per-package fact caching for free (the
// analysis results land in GOCACHE, so unchanged packages are not
// re-analyzed). When go vet calls it back per compilation unit, it
// speaks the unitchecker protocol (-V=full, -flags, <unit>.cfg).
//
// With -fix, diagnostics that carry a suggested fix (currently
// ctxflow's use-the-ctx-parameter rewrite) are applied to the source
// in place; remaining diagnostics are printed and the exit status is
// nonzero only if any survive.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/tracerlock"
	"repro/internal/analysis/unlockpath"
	"repro/internal/analysis/walcheck"
)

// suite is the full analyzer set: the five invariant checkers plus
// the vet passes worth running on a lock-heavy storage engine.
var suite = []*analysis.Analyzer{
	lockorder.Analyzer,
	tracerlock.Analyzer,
	walcheck.Analyzer,
	unlockpath.Analyzer,
	ctxflow.Analyzer,
	copylock.Analyzer,
	atomic.Analyzer,
	unusedresult.Analyzer,
	lostcancel.Analyzer,
}

func main() {
	// go vet speaks to its vettool in three shapes; any of them means
	// we are the callee, not the driver.
	for _, arg := range os.Args[1:] {
		if strings.HasPrefix(arg, "-V=") || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(suite...) // does not return
		}
	}
	os.Exit(drive(os.Args[1:]))
}

func drive(args []string) int {
	fs := flag.NewFlagSet("dsdblint", flag.ExitOnError)
	fix := fs.Bool("fix", false, "apply suggested fixes to source files")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dsdblint [-fix] <package patterns>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsdblint:", err)
		return 2
	}

	if !*fix {
		cmd := exec.Command("go", "vet", "-vettool="+exe)
		cmd.Args = append(cmd.Args, patterns...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return ee.ExitCode()
			}
			fmt.Fprintln(os.Stderr, "dsdblint:", err)
			return 2
		}
		return 0
	}
	return driveFix(exe, patterns)
}

// jsonDiagnostic mirrors analysisflags's JSON output shape, the wire
// format of `go vet -json`.
type jsonDiagnostic struct {
	Posn           string             `json:"posn"`
	Message        string             `json:"message"`
	SuggestedFixes []jsonSuggestedFix `json:"suggested_fixes"`
}

type jsonSuggestedFix struct {
	Message string         `json:"message"`
	Edits   []jsonTextEdit `json:"edits"`
}

// jsonTextEdit's Start and End are byte offsets within Filename.
type jsonTextEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

func driveFix(exe string, patterns []string) int {
	cmd := exec.Command("go", "vet", "-vettool="+exe, "-json")
	cmd.Args = append(cmd.Args, patterns...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	runErr := cmd.Run()

	// Both streams may carry output: JSON objects interleaved with
	// `# pkg` comment lines. Strip the comments, then decode the
	// object stream: pkgpath -> analyzer -> diagnostics.
	var jsonText bytes.Buffer
	for _, stream := range [][]byte{out.Bytes(), errb.Bytes()} {
		sc := bufio.NewScanner(bytes.NewReader(stream))
		sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "#") {
				continue
			}
			jsonText.WriteString(sc.Text())
			jsonText.WriteByte('\n')
		}
	}
	dec := json.NewDecoder(bytes.NewReader(jsonText.Bytes()))
	var all []jsonDiagnostic
	decoded := false
	for dec.More() {
		var unit map[string]map[string][]jsonDiagnostic
		if err := dec.Decode(&unit); err != nil {
			break
		}
		decoded = true
		for _, byAnalyzer := range unit {
			for _, diags := range byAnalyzer {
				all = append(all, diags...)
			}
		}
	}
	if runErr != nil && !decoded {
		// The vet run failed before producing analysis output: a build
		// error, most likely. Show it verbatim.
		os.Stderr.Write(errb.Bytes())
		fmt.Fprintln(os.Stderr, "dsdblint:", runErr)
		return 2
	}

	remaining := applyFixes(all)
	for _, d := range remaining {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Posn, d.Message)
	}
	if len(remaining) > 0 {
		return 1
	}
	return 0
}

// applyFixes applies each diagnostic's first suggested fix and
// returns the diagnostics that had none. Edits are applied per file,
// back to front; overlapping edits forfeit the later fix rather than
// corrupting the file.
func applyFixes(diags []jsonDiagnostic) []jsonDiagnostic {
	var remaining []jsonDiagnostic
	byFile := make(map[string][]jsonTextEdit)
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 || len(d.SuggestedFixes[0].Edits) == 0 {
			remaining = append(remaining, d)
			continue
		}
		for _, e := range d.SuggestedFixes[0].Edits {
			byFile[e.Filename] = append(byFile[e.Filename], e)
		}
	}
	fixed := 0
	for file, edits := range byFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsdblint: -fix: %v\n", err)
			continue
		}
		prevStart := len(src) + 1
		applied := 0
		for _, e := range edits {
			if e.Start < 0 || e.End > len(src) || e.End > prevStart {
				continue // out of range or overlapping a later edit
			}
			src = append(src[:e.Start], append([]byte(e.New), src[e.End:]...)...)
			prevStart = e.Start
			applied++
		}
		if applied > 0 {
			if err := os.WriteFile(file, src, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dsdblint: -fix: %v\n", err)
				continue
			}
			fixed += applied
			fmt.Fprintf(os.Stderr, "dsdblint: fixed %s (%d edits)\n", file, applied)
		}
	}
	if fixed > 0 {
		fmt.Fprintf(os.Stderr, "dsdblint: applied %d fixes\n", fixed)
	}
	return remaining
}
