// Command dsquery builds a TPC-D database and runs a query against it,
// streaming the result rows — a minimal interactive front end for the
// database kernel, built entirely on the public dsdb API.
//
// Usage: dsquery -sf 0.002 -q 6             (TPC-D query by number)
//
//	dsquery -sql "select count(*) from lineitem where l_quantity < 10"
//	dsquery -q 6 -result-cache-bytes 4194304 -repeat 3   # repeat 2+ hit the cache
//	dsquery -q 6 -data-dir /tmp/dsdb   # first run builds the dir, later runs warm-start
//	dsquery -q 3 -explain              # print the plan without executing
//	dsquery -q 3 -analyze              # execute under per-operator instrumentation
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/dsdb"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	qn := flag.Int("q", 0, "TPC-D query number (2,3,4,5,6,9,11,12,13,14,15,17)")
	text := flag.String("sql", "", "ad-hoc SQL text (overrides -q)")
	hash := flag.Bool("hash", false, "use the hash-indexed database instead of Btree")
	seed := flag.Int64("seed", 42, "generator seed")
	parallel := flag.Int("parallel", 1, "partition-parallel scan workers (1 = serial)")
	cacheBytes := flag.Int64("result-cache-bytes", 0, "query result cache budget in bytes (0 = disabled)")
	repeat := flag.Int("repeat", 1, "run the query this many times (rows printed once; repeats show cache hits)")
	dataDir := flag.String("data-dir", "", "durable data directory: first run builds and checkpoints it, later runs warm-start without reloading TPC-D")
	explain := flag.Bool("explain", false, "print the query plan instead of executing (EXPLAIN)")
	analyze := flag.Bool("analyze", false, "execute under per-operator instrumentation and print the annotated plan (EXPLAIN ANALYZE)")
	flag.Parse()

	query := *text
	if query == "" {
		q, ok := dsdb.TPCDQuery(*qn)
		if !ok {
			log.Fatalf("no TPC-D query %d; use -q or -sql", *qn)
		}
		query = q
	}
	switch {
	case *analyze:
		query = "explain analyze " + query
	case *explain:
		query = "explain " + query
	}
	kind := dsdb.BTree
	if *hash {
		kind = dsdb.Hash
	}
	fmt.Fprintf(os.Stderr, "loading TPC-D (SF=%g, %s indices)...\n", *sf, kind)
	opts := []dsdb.Option{dsdb.WithTPCD(*sf), dsdb.WithIndexKind(kind),
		dsdb.WithSeed(*seed), dsdb.WithParallelism(*parallel)}
	if *cacheBytes > 0 {
		opts = append(opts, dsdb.WithResultCache(*cacheBytes))
	}
	if *dataDir != "" {
		opts = append(opts, dsdb.WithDataDir(*dataDir))
	}
	db, err := dsdb.Open(opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if db.WarmStarted() {
		fmt.Fprintf(os.Stderr, "warm start from %s (TPC-D load skipped)\n", *dataDir)
	}
	if *repeat < 1 {
		*repeat = 1
	}
	for run := 1; run <= *repeat; run++ {
		// Time the query and the drain only — printing happens after
		// the clock stops, so run 1 (which prints the rows) and the
		// cache-hit repeats compare like for like.
		t0 := time.Now()
		rows, err := db.Query(context.Background(), query)
		if err != nil {
			log.Fatal(err)
		}
		var printed [][]dsdb.Value
		n := 0
		for rows.Next() {
			if run == 1 {
				printed = append(printed, rows.Values())
			}
			n++
		}
		if err := rows.Err(); err != nil {
			rows.Close()
			log.Fatal(err)
		}
		hit := rows.CacheHit()
		rows.Close()
		elapsed := time.Since(t0)
		if run == 1 {
			for _, c := range rows.Columns() {
				fmt.Printf("%-18s", c)
			}
			fmt.Println()
			for _, row := range printed {
				for _, v := range row {
					fmt.Printf("%-18s", v.String())
				}
				fmt.Println()
			}
		}
		suffix := ""
		if hit {
			suffix = ", cache hit"
		}
		fmt.Fprintf(os.Stderr, "(run %d: %d rows in %s%s)\n", run, n, elapsed.Round(time.Microsecond), suffix)
	}
	if *parallel > 1 {
		fmt.Fprintf(os.Stderr, "(parallel workers: %d probe events outside the session trace)\n",
			db.WorkerProbeEvents())
	}
	if st, ok := db.ResultCacheStats(); ok {
		fmt.Fprintf(os.Stderr, "(result cache: %d hits / %d misses, %d entries, %d/%d bytes)\n",
			st.Hits, st.Misses, st.Entries, st.UsedBytes, st.MaxBytes)
	}
}
