// Command dsquery builds a TPC-D database and runs a query against it,
// printing the result rows — a minimal interactive front end for the
// database kernel.
//
// Usage: dsquery -sf 0.002 -q 6             (TPC-D query by number)
//
//	dsquery -sql "select count(*) from lineitem where l_quantity < 10"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/db/executor"
	"repro/internal/db/sql"
	"repro/internal/tpcd"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	qn := flag.Int("q", 0, "TPC-D query number (2,3,4,5,6,9,11,12,13,14,15,17)")
	text := flag.String("sql", "", "ad-hoc SQL text (overrides -q)")
	hash := flag.Bool("hash", false, "use the hash-indexed database instead of Btree")
	flag.Parse()

	query := *text
	if query == "" {
		q, ok := tpcd.Query(*qn)
		if !ok {
			log.Fatalf("no TPC-D query %d; use -q or -sql", *qn)
		}
		query = q
	}
	cfg := tpcd.DefaultConfig()
	cfg.SF = *sf
	if *hash {
		cfg.Indexes = 1
	}
	fmt.Fprintf(os.Stderr, "loading TPC-D (SF=%g, %s indices)...\n", *sf, cfg.Indexes)
	db, err := tpcd.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rows, schema, err := sql.Exec(db, executor.NewCtx(nil), query)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range schema.Columns {
		fmt.Printf("%-18s", c.Name)
	}
	fmt.Println()
	for _, r := range rows {
		for _, v := range r {
			fmt.Printf("%-18s", v.String())
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "(%d rows)\n", len(rows))
}
