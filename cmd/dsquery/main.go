// Command dsquery builds a TPC-D database and runs a query against it,
// streaming the result rows — a minimal interactive front end for the
// database kernel, built entirely on the public dsdb API.
//
// Usage: dsquery -sf 0.002 -q 6             (TPC-D query by number)
//
//	dsquery -sql "select count(*) from lineitem where l_quantity < 10"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/dsdb"
)

func main() {
	log.SetFlags(0)
	sf := flag.Float64("sf", 0.002, "TPC-D scale factor")
	qn := flag.Int("q", 0, "TPC-D query number (2,3,4,5,6,9,11,12,13,14,15,17)")
	text := flag.String("sql", "", "ad-hoc SQL text (overrides -q)")
	hash := flag.Bool("hash", false, "use the hash-indexed database instead of Btree")
	seed := flag.Int64("seed", 42, "generator seed")
	parallel := flag.Int("parallel", 1, "partition-parallel scan workers (1 = serial)")
	flag.Parse()

	query := *text
	if query == "" {
		q, ok := dsdb.TPCDQuery(*qn)
		if !ok {
			log.Fatalf("no TPC-D query %d; use -q or -sql", *qn)
		}
		query = q
	}
	kind := dsdb.BTree
	if *hash {
		kind = dsdb.Hash
	}
	fmt.Fprintf(os.Stderr, "loading TPC-D (SF=%g, %s indices)...\n", *sf, kind)
	db, err := dsdb.Open(dsdb.WithTPCD(*sf), dsdb.WithIndexKind(kind),
		dsdb.WithSeed(*seed), dsdb.WithParallelism(*parallel))
	if err != nil {
		log.Fatal(err)
	}
	rows, err := db.Query(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for _, c := range rows.Columns() {
		fmt.Printf("%-18s", c)
	}
	fmt.Println()
	n := 0
	for rows.Next() {
		for _, v := range rows.Values() {
			fmt.Printf("%-18s", v.String())
		}
		fmt.Println()
		n++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "(%d rows)\n", n)
	if *parallel > 1 {
		fmt.Fprintf(os.Stderr, "(parallel workers: %d probe events outside the session trace)\n",
			db.WorkerProbeEvents())
	}
}
