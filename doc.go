// Package repro is a from-scratch reproduction of "Optimization of
// Instruction Fetch for Decision Support Workloads" (Ramírez,
// Larriba-Pey, Navarro, Serrano, Valero, Torrellas — ICPP 1999): the
// Software Trace Cache.
//
// The public surface is the dsdb package family:
//
//   - repro/dsdb — a database/sql-style API over the instrumented
//     database kernel: Open with functional options (buffer pool,
//     index kind, TPC-D preload, tracer attachment, scan
//     parallelism, result cache), streaming Query with context
//     cancellation, QueryRow/Exec/Prepare, and DDL passthroughs. A
//     DB is safe for concurrent sessions — queries run under a
//     shared engine latch (writes exclusive), every execution owns
//     its context, and WithParallelism(n) fans sequential scans out
//     over page-range partitions merged back in page order, so
//     parallel plans return exactly their serial results.
//     WithResultCache(bytes) answers repeated queries from memory —
//     no executor, no buffer traffic, no instrumentation events —
//     consistently: entries are validated against per-table write
//     epochs, so writes invalidate exactly the results that read
//     them. WithDataDir(dir) makes the database durable: pages live
//     in checkpoint-generation files on disk, every Insert and DDL
//     statement is write-ahead logged before it mutates anything, and
//     reopening the directory recovers to the exact committed prefix
//     — a restarted server warm-starts instead of re-loading TPC-D
//     (Checkpoint collapses the log; Close checkpoints; Abandon
//     simulates a crash).
//   - repro/dsdb/qcache — the result cache itself: canonical-SQL
//     keys, fully materialized row sets, a configurable byte budget
//     under a deterministic accounting model with LRU eviction,
//     epoch-validated consistency, an optional admission threshold
//     (sub-threshold first executions are not cached) and optional
//     wall-clock TTLs with an injectable clock, shared by the local
//     and served query paths.
//   - repro/dsdb/stcpipe — the paper's toolchain as one composable
//     pipeline: Profile (traced workload → weighted CFG), Layout
//     (pluggable algorithms: STC, Pettis & Hansen, Torrellas,
//     original) and Simulate (SEQ.3 fetch unit with i-cache and
//     trace-cache models), plus Report for regenerating every table
//     and figure of the paper. ProfileConcurrent traces N concurrent
//     sessions against one database, interleaving their per-session
//     traces at query boundaries — instruction fetch under
//     multi-session DSS traffic as a first-class scenario — and
//     ProfileServed records the same interleaved profile from real
//     served traffic: an in-process server, N wire clients, one
//     kernel trace per connection. ProfileCached profiles a
//     repeat-heavy workload against a result-cached database, where
//     every repeat round traces as zero instructions — the
//     instruction-stream collapse of cached DSS serving.
//   - repro/dsdb/wire, repro/dsdb/server, repro/dsdb/client — the
//     serving subsystem: a length-prefixed binary protocol
//     (handshake, prepare, query, streaming row batches, error
//     frames, mid-stream cancellation), a TCP server mapping each
//     connection onto a per-session context over one shared DB
//     (connection limits, per-query deadlines, graceful drain), and
//     a client with the same Query/QueryRow/Exec/Prepare surface as
//     dsdb.DB returning byte-identical results over the network. The
//     server also serves introspection: SHOW virtual tables (stats,
//     conns, tables, pool, cache, wal, queries, slow), a Stats wire
//     frame, an optional slow-query log (WithSlowQueryThreshold), and
//     NewMetricsMux — an HTTP handler exposing Prometheus text
//     metrics (query latency and per-stage histograms included) plus
//     net/http/pprof, mounted by dsdbd -metrics-addr.
//   - repro/dsdb/obs — query observability: every query gets a
//     monotonically-assigned id (carried to clients on the Done
//     frame) and a pooled per-stage span — plan, cache, exec, io,
//     wal, net, measured disjointly so the stages sum to the
//     end-to-end latency — feeding a recent-query ring, log-spaced
//     aggregate histograms, and slow-query classification. Stdlib
//     only, nil-safe throughout; a disabled tracer costs one nil
//     check per query.
//   - repro/dsdb/load — the load generator behind cmd/dsload: N
//     client sessions driving a TPC-D query mix closed-loop or
//     open-loop (fixed-rate Poisson arrivals, queueing delay included
//     in the percentiles), warmup exclusion, latency percentiles,
//     throughput, cache hit-ratio reporting with cached/uncached
//     latency splits, adversarial scenarios (slowreader, zipf,
//     burst), and machine-readable JSON run reports.
//
// Binaries: cmd/dsquery (interactive queries), cmd/dsdbd (the
// serving daemon), cmd/dsload (load generation), cmd/profiler and
// cmd/experiments (the paper's analyses).
//
// Everything under internal/ — the storage manager (in-memory or
// disk-backed under a data directory), write-ahead log, buffer
// manager, B-tree/hash access methods, Volcano executor, SQL front
// end, TPC-D generator, kernel image, and the layout/fetch simulators
// — is implementation detail reached only through the public
// packages. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
