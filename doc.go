// Package repro is a from-scratch reproduction of "Optimization of
// Instruction Fetch for Decision Support Workloads" (Ramírez,
// Larriba-Pey, Navarro, Serrano, Valero, Torrellas — ICPP 1999): the
// Software Trace Cache. It contains a complete instrumented database
// kernel (storage manager, buffer manager, B-tree/hash access methods,
// Volcano executor, SQL front end), a TPC-D workload generator, the
// STC layout algorithm with the Pettis & Hansen and Torrellas et al.
// baselines, and i-cache/trace-cache/SEQ.3 fetch-unit simulators that
// regenerate every table and figure of the paper. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package repro
